"""The :class:`Cluster` control plane: one fleet, a living tenant set.

PR 4's :class:`~repro.runtime.placement.MultiTenantSession` packs a
*static* tenant set onto shared machines at construction.  Real serving
fleets are not static: kernels arrive, depart, burst and starve, and
the ROADMAP's queued control-plane features — sharded tenants,
priority/deadline dispatch, defragmenting re-placement, queue-depth
autoscaling — all need one place to land.  This module is that place,
composing the pieces the previous PRs built behind the
:class:`~repro.runtime.backend.ExecutionBackend` protocol:

* **dynamic lifecycle** — :meth:`Cluster.admit` programs a compiled
  kernel onto the shared fleet at runtime (first-fit into free banks,
  opening machines up to ``max_machines``); :meth:`Cluster.evict`
  retires one, failing its still-pending futures with
  :class:`~repro.runtime.backend.ClusterShutdown` and **defragmenting**
  the survivors — banks are reclaimed by re-packing the remaining
  placed tenants onto fresh machines (:func:`plan_placement`), and
  because results depend only on a tenant's own compiled artifacts,
  every surviving tenant's ``run_batch`` stays **bitwise identical**
  across the re-placement.  When first-fit fails but a re-pack would
  make room, :meth:`admit` defragments instead of refusing.
* **sharded tenants** — a kernel whose bank demand exceeds one machine
  (compiled with a ``shard_set``) joins the fleet as a
  :class:`~repro.runtime.sharding.ShardedSession` spanning its own
  machines, counted against ``max_machines`` alongside the shared ones.
* **priority/deadline dispatch** — :meth:`Cluster.submit` takes
  ``priority=`` (higher first) and ``deadline=`` (earliest-deadline-
  first within a priority class); the engine's
  :class:`~repro.runtime.serving.PriorityIntake` orders dispatch and
  still never mixes tenants in a micro-batch.
* **queue-depth autoscaling** — when a tenant's queued rows exceed
  ``autoscale_backlog_rows`` per serving lane, the cluster clones the
  tenant's session onto a fresh private machine (a new lane, up to
  ``autoscale_max_lanes``); when the tenant's queue drains, scaled
  lanes retire.  Scaled machines are burst capacity and are not
  counted against ``max_machines``.

Accounting follows the fleet through every membership change: each
evict or defragmenting admit closes an **epoch** (the fleet report so
far is archived), surviving unrebuilt lanes roll over without
re-charging their programming cost, and :meth:`Cluster.report` sums the
epochs (:func:`~repro.simulator.metrics.combine_epoch_reports`) — so
writes are charged exactly once per actual programming pass, and a
tenant admitted then evicted still shows up in the lifetime energy.

Tenant sessions are **fused** by default (``fused=True`` on the
cluster, threaded into every placed, sharded and autoscaled lane):
each tenant's batches replay its traced
:class:`~repro.runtime.fused.FusedPlan` instead of the per-stage
session walk.  The bitwise-identity guarantee is unchanged — results
*and* energy/latency accounting match the unfused oracle exactly, and
per-tenant mutations invalidate only that tenant's plan — so every
control-plane invariant above (isolation, re-placement identity,
epoch accounting) holds identically with fusion on or off.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import (
    ExecutionReport,
    combine_epoch_reports,
    combine_serial_reports,
    merge_concurrent_reports,
)

from .backend import ClusterShutdown, ExecutionBackend, LaneStats, SessionError
from .costmodel import PlacementCost, TenantProfile, TrafficHint
from .machineview import MachineGroupView
from .placement import (
    PlacementError,
    PlacementPlan,
    TenantAssignment,
    TenantProgram,
    _cost_model_usable,
    plan_placement,
    tenant_demand,
)
from .serving import PriorityIntake, ServingEngine
from .session import QuerySession, StoreOverflow
from .sharding import ShardedSession, ShardSet

__all__ = ["Cluster", "ClusterShutdown"]


def _normalize_hints(hints) -> Dict[str, "TrafficHint"]:
    """Traffic hints as a tenant-keyed dict, from a dict or iterable."""
    if hints is None:
        return {}
    if isinstance(hints, dict):
        out = dict(hints)
    else:
        out = {hint.tenant_id: hint for hint in hints}
    for tid, hint in out.items():
        if not isinstance(hint, TrafficHint):
            raise TypeError(
                f"traffic hint for {tid!r} is a "
                f"{type(hint).__name__}, not a TrafficHint"
            )
        if hint.tenant_id != tid:
            raise ValueError(
                f"traffic hint keyed {tid!r} names tenant "
                f"{hint.tenant_id!r}"
            )
    return out


class _LaneRecord:
    """One of a tenant's serving lanes, as the control plane sees it.

    ``backend`` is the live session (a colocated
    :class:`~repro.runtime.session.QuerySession` for a placed tenant,
    a :class:`~repro.runtime.sharding.ShardedSession` for a sharded
    one, a private clone for a scaled lane), ``lock`` the mutual
    exclusion unit it shares with other lanes of the same physical
    machine, ``stats`` the current epoch's traffic.  ``generation``
    bumps whenever a defragmentation swaps the backend, so an in-flight
    serve that raced the swap retries against the fresh session.
    """

    __slots__ = (
        "backend", "lock", "stats", "serve", "engine_lane", "scaled",
        "machine_index", "bank_offset", "banks", "generation",
    )

    def __init__(self, backend, lock, stats, scaled=False,
                 machine_index=None, bank_offset=0, banks=0):
        self.backend = backend
        self.lock = lock
        self.stats = stats
        self.serve = None
        self.engine_lane = None
        self.scaled = scaled
        #: Shared-fleet machine index for a placed lane; None = private.
        self.machine_index = machine_index
        self.bank_offset = bank_offset
        self.banks = banks
        self.generation = 0

    @property
    def last_report(self):
        """The *current* backend's last batch report — the record is
        what the engine lane holds, so pacing keeps following the live
        session across defragmentation swaps."""
        return self.backend.last_report


class _Tenant:
    """One live tenant: its compiled source, lanes and accounting."""

    __slots__ = (
        "tenant_id", "kind", "program", "shard_set", "func_name", "width",
        "lanes", "retired_lanes", "epoch_reports", "scaling",
        "store_state", "extra_groups", "initial_gids",
    )

    def __init__(self, tenant_id, kind, program, shard_set, func_name,
                 width):
        self.tenant_id = tenant_id
        self.kind = kind              # "placed" | "sharded"
        self.program = program        # TenantProgram (placed)
        self.shard_set = shard_set    # ShardSet (sharded)
        self.func_name = func_name
        self.width = width
        self.lanes: List[_LaneRecord] = []
        #: Final reports of lanes retired mid-epoch (autoscale-down).
        self.retired_lanes: List[ExecutionReport] = []
        #: This tenant's closed accounting epochs.
        self.epoch_reports: List[ExecutionReport] = []
        self.scaling = False
        #: Live-store snapshot after the last mutation (None = the
        #: store still equals the compiled parameters); a defrag rebuild
        #: replays it onto the fresh machine.
        self.store_state = None
        #: Growth groups (whole-bank units) the store has claimed past
        #: its compiled footprint — inflates the placement demand so a
        #: re-pack reserves room instead of evicting.
        self.extra_groups = 0
        #: Sharded tenants: the per-shard initial gid assignment the
        #: replay needs to reproduce the parent's id space.
        self.initial_gids = None


class Cluster(ExecutionBackend, MachineGroupView):
    """A shared CAM fleet with a dynamic tenant set and one dispatcher.

    Usage::

        cluster = Cluster(spec)
        cluster.admit(kernel_a, tenant_id="a")
        cluster.admit(kernel_b, tenant_id="b")
        cluster.run_batch(queries, tenant="a")          # synchronous
        future = cluster.submit(q, tenant="b",          # async, urgent
                                priority=1, deadline=0.005)
        cluster.evict("a")        # defragments; "b" results unchanged
        cluster.shutdown()

    ``admit`` accepts a :class:`~repro.compiler.CompiledKernel` (from
    :meth:`~repro.compiler.C4CAMCompiler.compile` — sharded kernels
    span machines) or a prepared
    :class:`~repro.runtime.placement.TenantProgram`.  The cluster is a
    context manager (clean exit drains, exceptional exit aborts) and
    implements the :class:`~repro.runtime.backend.ExecutionBackend`
    protocol, so it can itself be replicated or fronted like any other
    backend.
    """

    _group_noun = "cluster"

    def __init__(
        self,
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
        max_machines: Optional[int] = None,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
        autoscale_max_lanes: int = 1,
        autoscale_backlog_rows: Optional[int] = None,
        noise_sigma: float = 0.0,
        noise_seed=0,
        fused: bool = True,
        placement_policy: str = "ffd",
        traffic_hints=None,
    ):
        if max_machines is not None and max_machines < 1:
            raise ValueError("max_machines must be >= 1 (or None for auto)")
        if autoscale_max_lanes < 1:
            raise ValueError("autoscale_max_lanes must be >= 1")
        if placement_policy not in ("ffd", "cost"):
            raise ValueError(
                f"unknown placement policy {placement_policy!r} "
                "(one of 'ffd', 'cost')"
            )
        self.spec = spec
        self.tech = tech
        self.max_machines = max_machines
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.time_scale = time_scale
        self.autoscale_max_lanes = autoscale_max_lanes
        self.autoscale_backlog_rows = (
            2 * max_batch if autoscale_backlog_rows is None
            else autoscale_backlog_rows
        )
        self.noise_sigma = float(noise_sigma)
        self.fused = bool(fused)
        self.placement_policy = placement_policy
        self._traffic_hints: Dict[str, TrafficHint] = (
            _normalize_hints(traffic_hints)
        )
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        #: Re-entrant: admission can trigger a defragmentation which
        #: re-enters placement helpers.
        self._admit_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._shared_machines: List[CamMachine] = []
        self._shared_locks: List[threading.Lock] = []
        self._tenants: Dict[str, _Tenant] = {}
        self._admit_order: List[str] = []
        self._closed_epochs: List[ExecutionReport] = []
        self._engine: Optional[ServingEngine] = None
        self._closed = False
        self._admit_counter = 0
        self.defrag_count = 0
        self.autoscale_events: List[dict] = []
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0

    @classmethod
    def from_kernels(
        cls,
        kernels: Sequence,
        tenant_ids: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> "Cluster":
        """A cluster pre-admitting ``kernels`` (spec/tech from the
        first); keyword arguments configure the :class:`Cluster`."""
        if not kernels:
            raise ValueError("from_kernels needs at least one kernel")
        if tenant_ids is not None and len(tenant_ids) != len(kernels):
            raise ValueError(
                f"{len(kernels)} kernels but {len(tenant_ids)} tenant ids"
            )
        kwargs.setdefault("spec", kernels[0].spec)
        kwargs.setdefault("tech", kernels[0].tech)
        cluster = cls(**kwargs)
        for index, kernel in enumerate(kernels):
            cluster.admit(
                kernel,
                tenant_id=None if tenant_ids is None else tenant_ids[index],
            )
        return cluster

    # ------------------------------------------------------------ topology
    @property
    def machines(self) -> List[CamMachine]:
        """Every physical machine: the shared fleet, then each private
        (sharded / autoscaled) lane's machines in admission order."""
        with self._admit_lock:
            out = list(self._shared_machines)
            for tid in self._admit_order:
                for record in self._tenants[tid].lanes:
                    if record.machine_index is not None:
                        continue
                    group = getattr(record.backend, "machines", None)
                    if group is not None:
                        out.extend(group)
                    else:
                        out.append(record.backend.machine)
            return out

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def tenant_ids(self) -> List[str]:
        with self._admit_lock:
            return list(self._admit_order)

    @property
    def num_tenants(self) -> int:
        return len(self.tenant_ids)

    def tenant_lanes(self, tenant_id: str) -> int:
        """The tenant's live serving lane count (autoscaler observable)."""
        with self._admit_lock:
            return len(self._require(tenant_id).lanes)

    def bank_spans(self) -> Dict[str, tuple]:
        """Placed tenants' ``(machine_index, first_bank, banks)`` spans —
        the invariant surface the defragmentation tests check."""
        with self._admit_lock:
            return {
                tid: (
                    t.lanes[0].machine_index,
                    t.lanes[0].bank_offset,
                    t.lanes[0].banks,
                )
                for tid in self._admit_order
                for t in [self._tenants[tid]]
                if t.kind == "placed"
            }

    def describe(self) -> str:
        """A human-readable map of the fleet (one line per tenant)."""
        with self._admit_lock:
            cap = (
                "unbounded" if self.spec.banks is None
                else f"{self.spec.banks} banks"
            )
            lines = [
                f"{len(self._admit_order)} tenant(s) on "
                f"{len(self._shared_machines)} shared machine(s) "
                f"({cap} each), {self.defrag_count} defrag(s):"
            ]
            for tid in self._admit_order:
                t = self._tenants[tid]
                primary = t.lanes[0] if t.lanes else None
                if t.kind == "placed" and primary is not None:
                    where = (
                        f"machine {primary.machine_index} banks "
                        f"[{primary.bank_offset},"
                        f"{primary.bank_offset + primary.banks})"
                    )
                else:
                    where = (
                        f"{t.shard_set.num_shards} private shard machine(s)"
                    )
                lines.append(
                    f"  {tid!r}: {where}, {len(t.lanes)} lane(s)"
                )
            return "\n".join(lines)

    # ------------------------------------------------------- protocol bits
    def tenant_widths(self) -> Dict[str, int]:
        with self._admit_lock:
            return {
                tid: self._tenants[tid].width for tid in self._admit_order
            }

    def query_width(self, tenant: Optional[str] = None) -> int:
        return self._require(self._resolve_tenant(tenant)).width

    # ------------------------------------------------------------ admission
    def admit(self, kernel, tenant_id: Optional[str] = None,
              lanes: Optional[int] = None) -> str:
        """Place and program one compiled kernel at runtime.

        ``kernel`` is a :class:`~repro.compiler.CompiledKernel` (a
        sharded one spans machines) or a
        :class:`~repro.runtime.placement.TenantProgram`.  ``lanes``
        requests that many initial serving lanes (defaults to the
        kernel's ``num_replicas``; extra lanes are private clones).
        Returns the tenant id (auto-generated when not given).  Raises
        :class:`~repro.runtime.placement.PlacementError` when the fleet
        cannot hold the tenant even after defragmentation.
        """
        with self._admit_lock:
            if self._closed:
                raise SessionError("the cluster is shut down; no admits")
            tid = tenant_id
            if tid is None:
                while True:
                    tid = f"tenant{self._admit_counter}"
                    self._admit_counter += 1
                    if tid not in self._tenants:
                        break
            if tid in self._tenants:
                raise SessionError(f"duplicate tenant id {tid!r}")
            if lanes is None:
                lanes = max(1, getattr(kernel, "num_replicas", 1))
            tenant = self._build_tenant(tid, kernel)
            if tenant.kind == "sharded":
                self._admit_sharded(tenant)
            else:
                self._admit_placed(tenant)
            self._tenants[tid] = tenant
            self._admit_order.append(tid)
            engine = self._engine
            if engine is not None:
                engine.register_tenant(tid, tenant.width)
                for record in tenant.lanes:
                    # The record itself is the lane backend: it follows
                    # the live session across defragmentation swaps.
                    record.engine_lane = engine.add_lane(
                        record, tenant=tid, serve=record.serve
                    )
        # Extra initial lanes clone outside the control-plane lock —
        # programming machines is slow and must not stall concurrent
        # submits/evicts.
        for _ in range(lanes - 1):
            self._add_scaled_lane(tid, reason="admit")
        return tid

    def _build_tenant(self, tid: str, kernel) -> _Tenant:
        """Normalize a kernel/program into a tenant record (unplaced)."""
        if isinstance(kernel, TenantProgram):
            program = TenantProgram(
                tenant_id=tid,
                module=kernel.module,
                parameters=list(kernel.parameters),
                program=kernel.program,
                func_name=kernel.func_name,
            )
            return _Tenant(
                tid, "placed", program, None, program.func_name,
                program.plan.features,
            )
        spec = getattr(kernel, "spec", None)
        if spec is not None and spec != self.spec:
            raise SessionError(
                f"kernel compiled for a different ArchSpec than the "
                f"cluster's ({spec!r} vs {self.spec!r})"
            )
        shard_set = getattr(kernel, "shard_set", None)
        if shard_set is not None:
            return _Tenant(
                tid, "sharded", None, shard_set,
                getattr(kernel, "func_name", "forward"),
                shard_set.features,
            )
        programs = getattr(kernel, "query_programs", None)
        if not programs or len(programs) != 1 or not getattr(
            kernel, "uses_machine", False
        ):
            raise SessionError(
                f"tenant {tid!r} is not admissible: cluster tenants must "
                "be machine-lowered kernels with exactly one similarity "
                "program returning its (values, indices) directly"
            )
        program = TenantProgram(
            tenant_id=tid,
            module=kernel.module,
            parameters=list(kernel.parameters),
            program=programs[0],
            func_name=kernel.func_name,
        )
        return _Tenant(
            tid, "placed", program, None, kernel.func_name,
            program.plan.features,
        )

    def _machines_in_use(self) -> int:
        """Placed fleet machines: shared plus sharded tenants' privates
        (autoscaled burst lanes are not counted)."""
        private = sum(
            self._tenants[tid].shard_set.num_shards
            for tid in self._admit_order
            if self._tenants[tid].kind == "sharded"
        )
        return len(self._shared_machines) + private

    def _shared_budget(self) -> Optional[int]:
        """How many shared machines plan_placement may use."""
        if self.max_machines is None:
            return None
        private = self._machines_in_use() - len(self._shared_machines)
        return max(1, self.max_machines - private)

    def _admit_sharded(self, tenant: _Tenant) -> None:
        needed = tenant.shard_set.num_shards
        if self.max_machines is not None:
            if self._machines_in_use() + needed > self.max_machines:
                # Defragmenting the shared fleet may shrink it enough.
                self._defragment(reason="admit")
            if self._machines_in_use() + needed > self.max_machines:
                raise PlacementError(
                    f"tenant {tenant.tenant_id!r} needs {needed} "
                    f"machine(s) but the fleet of "
                    f"{self._machines_in_use()} is capped at "
                    f"{self.max_machines}",
                    self._live_demands(),
                    self.spec,
                    tenant_id=tenant.tenant_id,
                )
        backend = ShardedSession(
            tenant.shard_set,
            self.spec,
            self.tech,
            func_name=tenant.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=self._noise_seq.spawn(1)[0],
            fused=self.fused,
        )
        record = _LaneRecord(
            backend, threading.Lock(), LaneStats(backend),
            machine_index=None,
        )
        record.serve = self._make_serve(record)
        tenant.lanes.append(record)

    def _tenant_demand(self, tenant: _Tenant):
        """The tenant's bank demand, inflated by its store growth so a
        re-pack reserves the banks its grown store needs."""
        demand = tenant_demand(tenant.tenant_id, tenant.program.plan,
                               self.spec)
        if tenant.extra_groups:
            unit = max(
                1, self.spec.banks_needed(tenant.program.plan.col_tiles)
            )
            demand = dataclasses.replace(
                demand, banks=demand.banks + tenant.extra_groups * unit
            )
        return demand

    def _live_demands(self, extra: Optional[_Tenant] = None):
        demands = [
            self._tenant_demand(self._tenants[tid])
            for tid in self._admit_order
            if self._tenants[tid].kind == "placed"
        ]
        if extra is not None:
            demands.append(self._tenant_demand(extra))
        return demands

    # -------------------------------------------------- cost-model plumbing
    def set_traffic_hints(self, hints) -> None:
        """Install per-tenant :class:`~repro.runtime.costmodel.TrafficHint`
        traffic expectations (a dict keyed by tenant id, or an iterable).
        They steer the ``placement_policy="cost"`` packer and the
        cost-burdened autoscaler; tenants without a hint fall back to
        their observed query counts as a rate proxy."""
        with self._admit_lock:
            self._traffic_hints = _normalize_hints(hints)

    def traffic_cost_model(self) -> Optional[PlacementCost]:
        """The fleet's live :class:`PlacementCost`: per-tenant profiles
        calibrated from measured lifetime reports (tenants that have
        not served yet get a neutral zero-latency profile), traffic
        hints from :meth:`set_traffic_hints` — observed query counts
        stand in as relative rates for unhinted tenants.  ``None``
        before any tenant is admitted."""
        with self._admit_lock:
            profiles: Dict[str, TenantProfile] = {}
            hints: Dict[str, TrafficHint] = {}
            for tid in self._admit_order:
                tenant = self._tenants[tid]
                report = self.tenant_report(tid)
                banks = None
                if tenant.kind == "placed" and tenant.lanes:
                    banks = max(1, tenant.lanes[0].banks)
                if report.queries > 0:
                    profiles[tid] = TenantProfile.from_report(
                        tid, report, banks=banks
                    )
                else:
                    profiles[tid] = TenantProfile(
                        tenant_id=tid,
                        per_query_latency_ns=0.0,
                        banks=banks if banks is not None else 1,
                    )
                hint = self._traffic_hints.get(tid)
                if hint is not None:
                    hints[tid] = hint
                elif report.queries > 0:
                    hints[tid] = TrafficHint(
                        tenant_id=tid, rate_qps=float(report.queries)
                    )
            if not profiles:
                return None
            return PlacementCost(profiles, hints=hints, tech=self.tech)

    def _plan_shared(self, demands):
        """Plan the shared fleet under the cluster's placement policy
        (the cost policy degrades to FFD until traffic exists)."""
        cost_model = (
            self.traffic_cost_model()
            if self.placement_policy == "cost" else None
        )
        return plan_placement(
            demands, self.spec, self._shared_budget(),
            policy=self.placement_policy, cost_model=cost_model,
        )

    def _admit_placed(self, tenant: _Tenant) -> None:
        demand = tenant_demand(tenant.tenant_id, tenant.program.plan,
                               self.spec)
        if self.spec.banks is not None and demand.banks > self.spec.banks:
            raise PlacementError(
                f"tenant {tenant.tenant_id!r} alone needs {demand.banks} "
                f"bank(s) but one machine caps at {self.spec.banks}; "
                f"compile it sharded (num_shards=None auto-shards) so it "
                f"can span machines",
                self._live_demands(extra=tenant),
                self.spec,
                tenant_id=tenant.tenant_id,
            )
        # Cost policy with a live traffic signal: admission re-packs the
        # fleet around the newcomer instead of first-fitting it into
        # whatever fragment is free — a hot newcomer must not land next
        # to another hot tenant just because the banks happened to fit.
        if self.placement_policy == "cost" and self._shared_machines:
            model = self._admission_model(tenant)
            demands = self._live_demands(extra=tenant)
            if _cost_model_usable(model, demands):
                plan = plan_placement(
                    demands, self.spec, self._shared_budget(),
                    policy="cost", cost_model=model,
                )
                self._defragment(reason="admit", plan=plan,
                                 newcomer=tenant)
                return
        index = self._first_fit(demand.banks)
        if index is None and self._may_open_shared():
            self._shared_machines.append(self._fresh_machine())
            self._shared_locks.append(threading.Lock())
            index = len(self._shared_machines) - 1
        if index is not None:
            tenant.lanes.append(
                self._program_placed(tenant, index)
            )
            return
        # First fit failed on the fragmented fleet: a re-pack including
        # the newcomer may still hold everyone (raises PlacementError —
        # with the full per-tenant breakdown — when it cannot).
        plan = self._plan_shared(self._live_demands(extra=tenant))
        self._defragment(reason="admit", plan=plan, newcomer=tenant)

    def _admission_model(self, newcomer: _Tenant) -> Optional[PlacementCost]:
        """The live cost model extended with the (not yet admitted)
        newcomer: a neutral profile plus its traffic hint, if any."""
        model = self.traffic_cost_model()
        profiles = dict(model.profiles) if model is not None else {}
        hints = dict(model.hints) if model is not None else {}
        tid = newcomer.tenant_id
        profiles.setdefault(
            tid, TenantProfile(tenant_id=tid, per_query_latency_ns=0.0)
        )
        hint = self._traffic_hints.get(tid)
        if hint is not None:
            hints[tid] = hint
        return PlacementCost(profiles, hints=hints, tech=self.tech)

    def _fresh_machine(self) -> CamMachine:
        return CamMachine(
            self.spec, self.tech, noise_sigma=self.noise_sigma,
            noise_seed=self._noise_seq.spawn(1)[0],
        )

    def _first_fit(self, banks: int) -> Optional[int]:
        if self.spec.banks is None:
            return 0 if self._shared_machines else None
        for index, machine in enumerate(self._shared_machines):
            if self.spec.banks - machine.banks_used >= banks:
                return index
        return None

    def _may_open_shared(self) -> bool:
        if self.spec.banks is None:
            return not self._shared_machines
        if self.max_machines is None:
            return True
        return self._machines_in_use() < self.max_machines

    def _program_placed(
        self, tenant: _Tenant, index: int,
        expect_offset: Optional[int] = None,
    ) -> _LaneRecord:
        """Program one placed tenant at machine ``index``'s fill level."""
        machine = self._shared_machines[index]
        offset = machine.banks_used
        if expect_offset is not None and offset != expect_offset:
            raise SessionError(
                f"placement drift: tenant {tenant.tenant_id!r} planned "
                f"at bank {expect_offset} of machine {index} but the "
                f"machine holds {offset} banks"
            )
        session = QuerySession(
            tenant.program.module,
            self.spec,
            self.tech,
            tenant.program.parameters,
            tenant.program.program,
            func_name=tenant.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=self._noise_seq.spawn(1)[0],
            machine=machine,
            fused=self.fused,
        )
        # Pre-grow to the recorded growth footprint (deterministic bank
        # usage, matching the inflated placement demand), then replay
        # the live store onto the fresh machine with incremental
        # mutations.
        while session.growth_groups < tenant.extra_groups:
            session.grow()
        if tenant.store_state is not None:
            session.restore(tenant.store_state)
        record = _LaneRecord(
            session, self._shared_locks[index], LaneStats(session),
            machine_index=index, bank_offset=offset,
            banks=machine.banks_used - offset,
        )
        record.serve = self._make_serve(record)
        return record

    # -------------------------------------------------------- defragmenting
    def _defragment(self, reason: str, plan=None,
                    newcomer: Optional[_Tenant] = None,
                    extra_reports=()) -> None:
        """Close the accounting epoch and re-pack the placed tenants.

        Runs with every shared-machine lock held, so in-flight batches
        drain first.  Surviving placed tenants are re-programmed onto
        fresh machines per ``plan`` (default: a fresh
        :func:`plan_placement` over the live set) — their compiled
        artifacts are untouched, so results stay bitwise identical —
        and ``newcomer``, when given, is placed alongside them.
        Private (sharded / scaled) lanes keep their machines and roll
        their accounting over without re-charging setup.
        ``extra_reports`` (an evicted tenant's final lane reports) are
        folded into the closing epoch.
        """
        del reason  # for the call sites' readability only
        if plan is None:
            placed = any(
                self._tenants[tid].kind == "placed"
                for tid in self._admit_order
            )
            if placed or newcomer is not None:
                plan = self._plan_shared(self._live_demands(extra=newcomer))
        locks = list(self._shared_locks)
        for lock in locks:
            lock.acquire()
        try:
            self._close_epoch(extra_reports)
            if plan is not None:
                self._shared_machines = [
                    self._fresh_machine() for _ in range(plan.num_machines)
                ]
                self._shared_locks = [
                    threading.Lock() for _ in self._shared_machines
                ]
                for assignment in plan.assignments:
                    if (newcomer is not None
                            and assignment.tenant_id == newcomer.tenant_id):
                        tenant = newcomer
                    else:
                        tenant = self._tenants[assignment.tenant_id]
                    record = self._program_placed(
                        tenant, assignment.machine_index,
                        expect_offset=assignment.bank_offset,
                    )
                    if tenant is newcomer and not tenant.lanes:
                        tenant.lanes.append(record)
                    else:
                        primary = tenant.lanes[0]
                        with self._stats_lock:
                            primary.backend = record.backend
                            primary.lock = record.lock
                            primary.stats = record.stats
                            primary.machine_index = record.machine_index
                            primary.bank_offset = record.bank_offset
                            primary.banks = record.banks
                            primary.generation += 1
            else:
                self._shared_machines, self._shared_locks = [], []
            self.defrag_count += 1
        finally:
            for lock in reversed(locks):
                lock.release()

    def _close_epoch(self, extra_reports=()) -> None:
        """Archive the fleet-so-far and restart every lane's accounting.

        ``extra_reports`` carries lanes that are leaving the fleet with
        this epoch (an evicted tenant's traffic) so the lifetime report
        keeps counting them.  Private lanes that survive keep their
        machines, so their fresh stats do not re-charge setup; placed
        lanes are about to be re-programmed and get fully-charged stats
        from the rebuild.
        """
        with self._stats_lock:
            epoch = self._epoch_report_unlocked(list(extra_reports))
            if epoch is not None:
                self._closed_epochs.append(epoch)
            for tid in self._admit_order:
                tenant = self._tenants[tid]
                parts = [
                    record.stats.report() for record in tenant.lanes
                ] + tenant.retired_lanes
                if parts:
                    tenant.epoch_reports.append(
                        merge_concurrent_reports(parts)
                    )
                tenant.retired_lanes = []
                for record in tenant.lanes:
                    # Surviving machines don't re-program, so the fresh
                    # epoch charges no setup; a defrag rebuild replaces
                    # the placed lanes' stats with fully-charged ones.
                    record.stats = LaneStats(
                        record.backend, charge_setup=False
                    )

    def _epoch_report_unlocked(
        self, extra_reports: Optional[List[ExecutionReport]] = None
    ) -> Optional[ExecutionReport]:
        """The current epoch's fleet report; caller holds _stats_lock."""
        by_machine: Dict[int, List[ExecutionReport]] = {}
        privates: List[ExecutionReport] = list(extra_reports or [])
        retired: List[ExecutionReport] = []
        for tid in self._admit_order:
            tenant = self._tenants[tid]
            for record in tenant.lanes:
                if record.machine_index is None:
                    privates.append(record.stats.report())
                else:
                    by_machine.setdefault(record.machine_index, []).append(
                        record.stats.report()
                    )
            retired.extend(tenant.retired_lanes)
        parts = [
            combine_serial_reports(group) for group in by_machine.values()
        ] + privates + retired
        if not parts:
            return None
        return merge_concurrent_reports(parts)

    # -------------------------------------------------------------- evict
    def evict(self, tenant_id: str, defragment: bool = True) -> None:
        """Retire one tenant at runtime.

        The tenant's queued (undispatched) requests and its lanes'
        already-dispatched-but-unserved batches fail with
        :class:`~repro.runtime.backend.ClusterShutdown` naming the
        tenant; in-flight batches finish normally.  With
        ``defragment=True`` (default) the surviving placed tenants are
        re-packed onto fresh machines, reclaiming the evicted banks —
        their results stay bitwise identical.  ``defragment=False``
        leaves the survivors in place (the evicted banks stay dead
        until the next defragmentation).
        """
        with self._admit_lock:
            tenant = self._require(tenant_id)
            engine = self._engine
            error = ClusterShutdown(
                f"tenant {tenant_id!r} was evicted before this request ran"
            )
            if engine is not None:
                engine.drop_tenant(tenant_id)
                engine.drain_tenant(tenant_id, error)
                for record in tenant.lanes:
                    if record.engine_lane is not None:
                        engine.remove_lane(record.engine_lane, error=error)
            # Drain in-flight work on the evicted tenant's lanes (its
            # engine lanes no longer accept batches), then capture its
            # final traffic for the closing epoch.
            for record in tenant.lanes:
                with record.lock:
                    pass
            with self._stats_lock:
                final = [
                    record.stats.report() for record in tenant.lanes
                ] + tenant.retired_lanes
            self._del_tenant(tenant_id)
            if tenant.kind == "placed" and defragment:
                self._defragment(reason="evict", extra_reports=final)
            else:
                self._close_epoch(extra_reports=final)

    def _del_tenant(self, tenant_id: str) -> None:
        del self._tenants[tenant_id]
        self._admit_order.remove(tenant_id)

    def _require(self, tenant_id: str) -> _Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise SessionError(
                f"no tenant {tenant_id!r} on this cluster; tenants: "
                f"{sorted(self._tenants)}"
            )
        return tenant

    def _resolve_tenant(self, tenant: Optional[str]) -> str:
        if tenant is not None:
            return tenant
        with self._admit_lock:
            if len(self._admit_order) == 1:
                return self._admit_order[0]
        raise SessionError(
            "this cluster serves several tenants; name one (tenants: "
            f"{sorted(self._tenants)})"
        )

    # ------------------------------------------------------------- serving
    def _make_serve(self, record: _LaneRecord):
        """The lane's ``(queries, tenant)`` callable: machine-locked,
        defrag-safe (retries when a re-placement swapped the backend
        mid-wait), folding stats into the current epoch."""
        def serve(queries, _tenant):
            while True:
                generation = record.generation
                backend, lock = record.backend, record.lock
                with lock:
                    if record.generation != generation:
                        continue  # defragged while waiting: rebind
                    outputs = backend.run_batch(queries)
                    report = backend.last_report
                break
            with self._stats_lock:
                record.stats.add(report)
                self.last_report = report
                self.batches_run += 1
            return outputs

        return serve

    def run_batch(self, queries, tenant: Optional[str] = None):
        """Serve one ``B×D`` batch synchronously on the tenant's
        primary lane; bitwise identical (noise disabled) to the
        tenant's kernel compiled and served alone.

        The primary lane is the one lane the autoscaler never retires,
        so a synchronous batch can never race a scale-down into
        orphaned accounting; scaled lanes serve the async path only.
        """
        if isinstance(queries, str):  # (tenant_id, queries) convenience
            queries, tenant = tenant, queries
        tid = self._resolve_tenant(tenant)
        with self._admit_lock:
            record = self._require(tid).lanes[0]
        return record.serve(np.asarray(queries, dtype=np.float64), tid)

    # ------------------------------------------------------------ mutations
    def insert(self, patterns, tenant: Optional[str] = None) -> List[int]:
        """Append patterns to a tenant's live store; returns stable ids.

        The mutation lands on the tenant's primary lane under its
        machine lock (in-flight batches finish first) and mirrors onto
        every scaled lane before returning — the completion barrier
        after which no lane serves the old store.  A placed tenant that
        outgrows its banks triggers a defragmenting **re-placement**
        with its demand inflated by the growth (not an eviction); a
        sharded tenant splits a new shard instead.
        """
        return self._mutate(tenant, lambda backend: backend.insert(patterns))

    def delete(self, ids, tenant: Optional[str] = None) -> None:
        """Tombstone stored patterns of a tenant by id."""
        self._mutate(tenant, lambda backend: backend.delete(ids))

    def update(self, pattern_id: int, pattern,
               tenant: Optional[str] = None) -> None:
        """Rewrite one stored pattern of a tenant in place."""
        self._mutate(
            tenant, lambda backend: backend.update(pattern_id, pattern)
        )

    def compact(self, tenant: Optional[str] = None) -> int:
        """Defragment a tenant's store; returns rows moved."""
        return self._mutate(tenant, lambda backend: backend.compact())

    def pattern_count(self, tenant: Optional[str] = None) -> int:
        """A tenant's live stored-pattern count."""
        with self._admit_lock:
            record = self._require(self._resolve_tenant(tenant)).lanes[0]
        return record.backend.pattern_count

    def row_ids(self, tenant: Optional[str] = None) -> List[int]:
        """A tenant's live pattern ids in rank order."""
        with self._admit_lock:
            record = self._require(self._resolve_tenant(tenant)).lanes[0]
        return record.backend.row_ids()

    def _mutate(self, tenant: Optional[str], op: Callable):
        """Run ``op`` on the tenant's primary backend, growing the
        placement on overflow, then mirror the store to scaled lanes."""
        tid = self._resolve_tenant(tenant)
        while True:
            with self._admit_lock:
                if self._closed:
                    raise SessionError(
                        "the cluster is shut down; no mutations"
                    )
                tenant_rec = self._require(tid)
                record = tenant_rec.lanes[0]
            generation = record.generation
            backend, lock = record.backend, record.lock
            grow = False
            with lock:
                if record.generation != generation:
                    continue  # defragged while waiting: rebind
                try:
                    result = op(backend)
                except StoreOverflow:
                    if tenant_rec.kind != "placed":
                        raise
                    grow = True
                else:
                    state = backend.store_state()
                    groups = getattr(backend, "growth_groups", 0)
                    initial = getattr(backend, "_initial_gids", None)
                    shard_set = getattr(backend, "shard_set", None)
                    banks = getattr(backend, "banks_used", None)
            if not grow:
                break
            self._grow_tenant(tid)
        with self._admit_lock:
            tenant_rec = self._tenants.get(tid)
            scaled: List[_LaneRecord] = []
            if tenant_rec is not None:
                tenant_rec.store_state = state
                tenant_rec.extra_groups = groups
                if initial is not None:
                    tenant_rec.initial_gids = [list(g) for g in initial]
                if shard_set is not None and tenant_rec.kind == "sharded":
                    tenant_rec.shard_set = shard_set
                if banks is not None and record.machine_index is not None:
                    record.banks = banks
                scaled = list(tenant_rec.lanes[1:])
        # Completion barrier: every scaled lane adopts the new store
        # (under its own lock, so an in-flight batch drains first)
        # before the mutation returns to the caller.
        for rec in scaled:
            with rec.lock:
                rec.backend.restore(state)
        return result

    @staticmethod
    def _replay_op(state, initial_gids) -> Callable:
        """An op that drives a freshly admitted backend to ``state``
        (clone/reset carry live stores across re-admission)."""
        def op(backend):
            if initial_gids is not None and hasattr(backend, "_seed_gids"):
                backend._seed_gids(initial_gids)
            backend.restore(state)
        return op

    def _grow_tenant(self, tenant_id: str) -> None:
        """A placed tenant's store outgrew its machine's free banks:
        reserve one more growth group and re-pack the fleet around it
        (re-placement, not eviction).  Raises
        :class:`~repro.runtime.placement.PlacementError` when even a
        re-pack cannot hold the grown tenant."""
        with self._admit_lock:
            tenant = self._require(tenant_id)
            tenant.extra_groups += 1
            try:
                self._defragment(reason="grow")
            except Exception:
                tenant.extra_groups -= 1
                raise

    def _ensure_engine(self) -> ServingEngine:
        with self._admit_lock:
            if self._closed:
                raise SessionError(
                    "the cluster is shut down; no new requests"
                )
            if self._engine is None:
                engine = ServingEngine(
                    None,
                    max_batch=self.max_batch,
                    max_wait=self.max_wait,
                    time_scale=self.time_scale,
                    intake=PriorityIntake(),
                )
                engine.on_batch_done = self._on_batch_done
                for tid in self._admit_order:
                    tenant = self._tenants[tid]
                    engine.register_tenant(tid, tenant.width)
                    for record in tenant.lanes:
                        record.engine_lane = engine.add_lane(
                            record, tenant=tid, serve=record.serve
                        )
                self._engine = engine
            return self._engine

    def submit(
        self,
        queries: np.ndarray,
        tenant: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ):
        """Enqueue one request; returns its future immediately.

        ``priority`` (higher = more urgent) picks the dispatch class;
        ``deadline`` (seconds from now) orders within the class —
        earliest deadline first.  Micro-batches coalesce same-tenant
        requests only.  The future fails with
        :class:`~repro.runtime.backend.ClusterShutdown` if the tenant
        is evicted (or the cluster shut down) before it is served.
        """
        tid = self._resolve_tenant(tenant)
        future = self._ensure_engine().submit(
            queries, tenant=tid, priority=priority, deadline=deadline
        )
        self._maybe_scale_up(tid)
        return future

    def pending_rows(self, tenant: Optional[str] = None) -> int:
        """Queued, not-yet-dispatched rows (the autoscaler's signal)."""
        engine = self._engine
        return 0 if engine is None else engine.pending_rows(tenant)

    # ---------------------------------------------------------- autoscaler
    def _scale_eligible(self, tenant_id: str, engine) -> bool:
        """Queue-depth eligibility: backlog beyond the per-lane
        threshold, headroom under ``autoscale_max_lanes``, not already
        scaling.  Caller holds the admit lock."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None or tenant.scaling:
            return False
        if len(tenant.lanes) >= self.autoscale_max_lanes:
            return False
        backlog = engine.pending_rows(tenant_id)
        return backlog > self.autoscale_backlog_rows * len(tenant.lanes)

    def _scale_target(self, tenant_id: str, engine) -> Optional[tuple]:
        """Which tenant the next scaled lane should go to, or None.

        The FFD policy scales the submitting tenant when its own queue
        is deep.  The cost policy scales the *most cost-burdened*
        eligible tenant — backlog rows weighted by the tenant's
        calibrated per-query latency — so a short queue of heavy
        batches outranks a long queue of cheap ones.  Caller holds the
        admit lock.
        """
        if self.placement_policy != "cost":
            if self._scale_eligible(tenant_id, engine):
                return (tenant_id, "queue-depth")
            return None
        candidates = [
            tid for tid in self._admit_order
            if self._scale_eligible(tid, engine)
        ]
        if not candidates:
            return None
        model = self.traffic_cost_model()
        if model is None:
            return (tenant_id, "queue-depth") \
                if tenant_id in candidates else (candidates[0], "queue-depth")

        def burden(tid):
            latency = (
                model.predict_query_latency_ns(tid)
                if tid in model.profiles else 0.0
            )
            return engine.pending_rows(tid) * latency

        ranked = sorted(candidates, key=lambda tid: (-burden(tid), tid))
        return (ranked[0], "cost-burden")

    def _maybe_scale_up(self, tenant_id: str) -> None:
        with self._admit_lock:
            engine = self._engine
            if engine is None:
                return
            target = self._scale_target(tenant_id, engine)
            if target is None:
                return
            target_id, reason = target
            self._tenants[target_id].scaling = True
        worker = threading.Thread(
            target=self._scale_up, args=(target_id, reason), daemon=True,
            name=f"cluster-scale-{target_id}",
        )
        worker.start()

    def _scale_up(self, tenant_id: str, reason: str = "queue-depth") -> None:
        try:
            self._add_scaled_lane(tenant_id, reason=reason)
        finally:
            with self._admit_lock:
                tenant = self._tenants.get(tenant_id)
                if tenant is not None:
                    tenant.scaling = False

    def _add_scaled_lane(self, tenant_id: str, reason: str) -> None:
        """Clone the tenant's primary session onto a private machine and
        attach it as a new serving lane."""
        with self._admit_lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                return
            base = tenant.lanes[0].backend
        # The clone programs a fresh machine — slow; done outside the
        # control-plane lock so admits/evicts/submits keep flowing.
        backend = base.clone()
        with self._admit_lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None or self._closed:
                return  # evicted while the clone programmed: discard
            record = _LaneRecord(
                backend, threading.Lock(), LaneStats(backend), scaled=True,
                machine_index=None,
            )
            record.serve = self._make_serve(record)
            tenant.lanes.append(record)
            if self._engine is not None:
                record.engine_lane = self._engine.add_lane(
                    record, tenant=tenant_id, serve=record.serve
                )
            self.autoscale_events.append({
                "tenant": tenant_id,
                "action": "scale-up",
                "reason": reason,
                "lanes": len(tenant.lanes),
            })

    def _on_batch_done(self, tenant_id: Optional[str]) -> None:
        """Engine completion hook: shrink an idle scaled lane when the
        tenant's queue has fully drained."""
        if tenant_id is None:
            return
        with self._admit_lock:
            tenant = self._tenants.get(tenant_id)
            engine = self._engine
            if tenant is None or engine is None:
                return
            if len(tenant.lanes) <= 1:
                return
            if engine.pending_rows(tenant_id) > 0:
                return
            for record in list(tenant.lanes[1:]):
                lane = record.engine_lane
                if not record.scaled or lane is None:
                    continue
                if not lane.alive or lane.outstanding > 0:
                    continue
                engine.remove_lane(lane)
                tenant.lanes.remove(record)
                with self._stats_lock:
                    tenant.retired_lanes.append(record.stats.report())
                self.autoscale_events.append({
                    "tenant": tenant_id,
                    "action": "scale-down",
                    "lanes": len(tenant.lanes),
                })
                break

    # ------------------------------------------------------- plan round-trip
    def plan(self) -> dict:
        """The cluster's reproducible configuration as a JSON-able dict.

        Captures the arch spec, the cluster knobs, the tenant set (in
        admission order, with lane counts), the live shared-fleet bank
        layout (in programming order) and the traffic hints —
        everything :meth:`from_plan` needs to rebuild an identical
        fleet around the same compiled kernels.
        """
        with self._admit_lock:
            tenants = []
            for tid in self._admit_order:
                tenant = self._tenants[tid]
                tenants.append({
                    "tenant_id": tid,
                    "kind": tenant.kind,
                    "lanes": len(tenant.lanes),
                    "shards": (
                        tenant.shard_set.num_shards
                        if tenant.kind == "sharded" else 0
                    ),
                })
            placed = [
                (tid, self._tenants[tid].lanes[0])
                for tid in self._admit_order
                if self._tenants[tid].kind == "placed"
                and self._tenants[tid].lanes
            ]
            placed.sort(
                key=lambda item: (item[1].machine_index,
                                  item[1].bank_offset)
            )
            placement = [
                {
                    "tenant_id": tid,
                    "machine_index": record.machine_index,
                    "bank_offset": record.bank_offset,
                    "banks": record.banks,
                }
                for tid, record in placed
            ]
            hints = [
                dataclasses.asdict(self._traffic_hints[tid])
                for tid in sorted(self._traffic_hints)
            ]
            return {
                "version": 1,
                "spec": self.spec.to_dict(),
                "cluster": {
                    "max_machines": self.max_machines,
                    "max_batch": self.max_batch,
                    "max_wait": self.max_wait,
                    "time_scale": self.time_scale,
                    "autoscale_max_lanes": self.autoscale_max_lanes,
                    "autoscale_backlog_rows": self.autoscale_backlog_rows,
                    "placement_policy": self.placement_policy,
                    "fused": self.fused,
                },
                "tenants": tenants,
                "placement": placement,
                "num_machines": len(self._shared_machines),
                "traffic_hints": hints,
            }

    @classmethod
    def from_plan(cls, plan: dict, kernels, **kwargs) -> "Cluster":
        """Rebuild a cluster from a :meth:`plan` dict.

        ``kernels`` supplies the compiled artifacts the plan schedules:
        a dict keyed by tenant id, or a sequence aligned with the
        plan's tenant order.  Tenants are re-admitted in the recorded
        admission order (with their lane counts) and the shared fleet
        is pinned to the recorded bank layout, so ``run_batch`` results
        are bitwise identical to the cluster the plan was taken from.
        Keyword arguments override the recorded cluster knobs.
        """
        version = plan.get("version")
        if version != 1:
            raise ValueError(f"unsupported cluster plan version {version!r}")
        spec = ArchSpec.from_dict(plan["spec"])
        entries = list(plan["tenants"])
        if not isinstance(kernels, dict):
            kernels = list(kernels)
            if len(kernels) != len(entries):
                raise ValueError(
                    f"the plan schedules {len(entries)} tenant(s) but "
                    f"{len(kernels)} kernel(s) were supplied"
                )
            kernels = {
                entry["tenant_id"]: kernel
                for entry, kernel in zip(entries, kernels)
            }
        missing = [
            entry["tenant_id"] for entry in entries
            if entry["tenant_id"] not in kernels
        ]
        if missing:
            raise ValueError(f"no kernel supplied for tenant(s) {missing}")
        config = dict(plan.get("cluster", {}))
        config["traffic_hints"] = [
            TrafficHint(**hint) for hint in plan.get("traffic_hints", [])
        ]
        config.update(kwargs)
        if "tech" not in config and entries:
            first = kernels[entries[0]["tenant_id"]]
            tech = getattr(first, "tech", None)
            if tech is not None:
                config["tech"] = tech
        cluster = cls(spec, **config)
        for entry in entries:
            tid = entry["tenant_id"]
            cluster.admit(
                kernels[tid], tenant_id=tid,
                lanes=max(1, int(entry.get("lanes", 1))),
            )
        cluster.apply_placement(plan.get("placement", []))
        return cluster

    def apply_placement(self, placement: Sequence[dict]) -> None:
        """Pin the shared fleet to a recorded bank layout (a
        :meth:`plan` ``placement`` list).  A no-op when the live layout
        already matches; otherwise a defragmenting re-program onto
        exactly those spans (results stay bitwise identical)."""
        with self._admit_lock:
            want = {
                entry["tenant_id"]: (
                    entry["machine_index"],
                    entry["bank_offset"],
                    entry["banks"],
                )
                for entry in placement
            }
            live = self.bank_spans()
            if want == live:
                return
            if set(want) != set(live):
                raise SessionError(
                    f"placement names tenants {sorted(want)} but the "
                    f"cluster's placed tenants are {sorted(live)}"
                )
            ordered = sorted(
                placement,
                key=lambda e: (e["machine_index"], e["bank_offset"]),
            )
            pinned = PlacementPlan(
                assignments=tuple(
                    TenantAssignment(
                        entry["tenant_id"], entry["machine_index"],
                        entry["bank_offset"], entry["banks"],
                    )
                    for entry in ordered
                ),
                num_machines=1 + max(
                    entry["machine_index"] for entry in ordered
                ),
                banks_per_machine=self.spec.banks,
            )
            self._defragment(reason="apply-placement", plan=pinned)

    def trace_summary(self, tenant: Optional[str] = None) -> dict:
        """Per-phase (queue/coalesce/run/merge) p50/p99 spans of the
        async serving path — :meth:`ServingEngine.trace_summary`."""
        engine = self._engine
        if engine is None:
            return {"requests": 0, "phases": {}}
        return engine.trace_summary(tenant)

    # -------------------------------------------------------------- report
    def tenant_report(self, tenant_id: str) -> ExecutionReport:
        """One tenant's lifetime accounting: its live lanes (merged
        concurrently) plus its closed epochs (summed sequentially)."""
        with self._admit_lock:
            tenant = self._require(tenant_id)
            with self._stats_lock:
                parts = [
                    record.stats.report() for record in tenant.lanes
                ] + tenant.retired_lanes
                epochs = list(tenant.epoch_reports)
        if parts:
            epochs.append(merge_concurrent_reports(parts))
        if not epochs:
            return ExecutionReport(queries=0, spec=self.spec)
        return combine_epoch_reports(epochs)

    def report(self) -> ExecutionReport:
        """The fleet's lifetime report across every membership epoch.

        Within an epoch, tenants of one shared machine combine serially
        and machines concurrently (exactly the PR 4 fleet semantics);
        epochs then sum (:func:`combine_epoch_reports`) — writes are
        charged once per actual programming pass, evicted tenants'
        traffic stays counted, and allocation reflects the peak fleet.
        """
        with self._admit_lock:
            with self._stats_lock:
                current = self._epoch_report_unlocked()
            epochs = list(self._closed_epochs)
        if current is not None:
            epochs.append(current)
        if not epochs:
            return ExecutionReport(queries=0, spec=self.spec)
        return combine_epoch_reports(epochs)

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline of the current fleet (live lanes only)."""
        with self._admit_lock:
            bases = [
                record.backend.setup_report()
                for tid in self._admit_order
                for record in self._tenants[tid].lanes
            ]
        if not bases:
            return ExecutionReport(queries=0, spec=self.spec)
        return merge_concurrent_reports(bases)

    # ------------------------------------------------------------ lifecycle
    def clone(self, noise_seed=None) -> "Cluster":
        """An independent cluster re-admitting every live tenant (same
        compiled artifacts, fresh machines; accounting starts over)."""
        with self._admit_lock:
            seed = (
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            )
            other = Cluster(
                self.spec,
                self.tech,
                max_machines=self.max_machines,
                max_batch=self.max_batch,
                max_wait=self.max_wait,
                time_scale=self.time_scale,
                autoscale_max_lanes=self.autoscale_max_lanes,
                autoscale_backlog_rows=self.autoscale_backlog_rows,
                noise_sigma=self.noise_sigma,
                noise_seed=seed,
                fused=self.fused,
                placement_policy=self.placement_policy,
                traffic_hints=dict(self._traffic_hints),
            )
            sources = [
                (tid, self._tenants[tid]) for tid in self._admit_order
            ]
        for tid, tenant in sources:
            if tenant.kind == "placed":
                other.admit(tenant.program, tenant_id=tid)
            else:
                shim = _ShardedSource(tenant.shard_set, self.spec,
                                      self.tech, tenant.func_name)
                other.admit(shim, tenant_id=tid)
            if tenant.store_state is not None:
                other._mutate(
                    tid,
                    self._replay_op(tenant.store_state, tenant.initial_gids),
                )
        return other

    def reset(self) -> None:
        """Re-place and re-program every tenant on fresh machines and
        restart all accounting (epochs, autoscale history, lanes).
        Pending submitted futures fail with
        :class:`~repro.runtime.backend.ClusterShutdown`."""
        with self._admit_lock:
            sources = [(tid, self._tenants[tid])
                       for tid in self._admit_order]
            engine = self._engine
            self._engine = None
            self._shared_machines = []
            self._shared_locks = []
            self._tenants = {}
            self._admit_order = []
            self._closed_epochs = []
            self.autoscale_events = []
            self.defrag_count = 0
            self.last_report = None
            self.batches_run = 0
        # Outside the control-plane lock: the engine's workers may be
        # blocked on it in their completion callback, and shutdown joins
        # them.
        if engine is not None:
            engine.shutdown(abort=True)
        for tid, tenant in sources:
            if tenant.kind == "placed":
                self.admit(tenant.program, tenant_id=tid)
            else:
                shim = _ShardedSource(tenant.shard_set, self.spec,
                                      self.tech, tenant.func_name)
                self.admit(shim, tenant_id=tid)
            if tenant.store_state is not None:
                self._mutate(
                    tid,
                    self._replay_op(tenant.store_state, tenant.initial_gids),
                )

    def shutdown(self, wait: bool = True, abort: bool = False) -> None:
        """Stop serving.  ``wait=True`` drains every submitted future;
        ``abort=True`` fails still-pending futures with
        :class:`~repro.runtime.backend.ClusterShutdown`.  Idempotent;
        the cluster refuses admits and submits afterwards."""
        with self._admit_lock:
            self._closed = True
            engine = self._engine
        if engine is not None:
            engine.shutdown(wait=wait, abort=abort)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None, abort=exc_type is not None)

    def stats(self) -> dict:
        """Control-plane counters: engine routing plus lifecycle."""
        engine = self._engine
        base = engine.stats() if engine is not None else {
            "requests_submitted": 0,
            "batches_dispatched": 0,
            "rows_dispatched": [],
            "outstanding_rows": 0,
        }
        with self._admit_lock:
            base.update({
                "tenants": list(self._admit_order),
                "lanes": {
                    tid: len(self._tenants[tid].lanes)
                    for tid in self._admit_order
                },
                "defrag_count": self.defrag_count,
                "autoscale_events": list(self.autoscale_events),
                "batches_run": self.batches_run,
                "placement_policy": self.placement_policy,
            })
        return base


class _ShardedSource:
    """A minimal kernel-shaped carrier for re-admitting a shard set
    (clone/reset paths) without recompiling anything."""

    def __init__(self, shard_set: ShardSet, spec, tech, func_name):
        self.shard_set = shard_set
        self.spec = spec
        self.tech = tech
        self.func_name = func_name
        self.num_replicas = 1
