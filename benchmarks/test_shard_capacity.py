"""Shard capacity scaling: stores that cannot fit one machine now run.

A bank-capped machine bounds the stored-pattern rows a kernel may
program; before sharding, such workloads simply failed
(``CapacityError``).  :class:`repro.runtime.sharding.ShardedSession`
splits the rows across N independently programmed machines, fans every
query batch out, and merges per-shard top-k results — so a KNN training
set 4x beyond one machine's capacity serves traffic, bitwise identical
to an (oversized) single-machine reference.

Asserted: the capped single-machine compile raises CapacityError with
honest required/available row counts; the auto-sharded kernel runs,
matches the unbounded reference bitwise and classifies like the numpy
golden model; the shard report sums energy/banks over shards while
latency stays max-over-shards + merge (capacity scaling costs machines,
not serial time).
"""

import numpy as np
import pytest

from repro.apps import build_knn, pad_features, synthetic_pneumonia
from repro.arch import ArchSpec
from repro.compiler import C4CAMCompiler, CapacityError
from repro.transforms import machine_row_capacity

from harness import print_series

FEATURES = 1024      # 32x32 X-ray crops
TRAIN_ROWS = 480     # stored patterns (padded to the row multiple)
QUERIES = 16

#: One bank of 32x32 analog-CAM subarrays (native Euclidean): 128
#: subarrays / 32 col tiles = 4 row tiles -> 128-row capacity.  The
#: training set is ~4x past it.
CAPPED = ArchSpec(rows=32, cols=32, cam_type="acam", banks=1)
UNBOUNDED = ArchSpec(rows=32, cols=32, cam_type="acam", banks=None)


@pytest.fixture(scope="module")
def workload():
    dataset = synthetic_pneumonia(n_train=TRAIN_ROWS, n_test=QUERIES)
    knn = build_knn(dataset, k=5, feature_multiple=FEATURES, row_multiple=32)
    queries = pad_features(dataset.test_x, FEATURES)
    return dict(knn=knn, queries=queries, test_y=dataset.test_y)


def test_capped_machine_rejects_oversized_store(workload):
    """Without sharding the store fails loudly, with honest numbers."""
    knn = workload["knn"]
    model, example = knn.kernel()
    with pytest.raises(CapacityError) as exc_info:
        C4CAMCompiler(CAPPED).compile(model, example, num_shards=1)
    err = exc_info.value
    assert err.required_rows == knn.patterns
    assert err.available_rows == machine_row_capacity(CAPPED, knn.features)
    assert err.required_rows > err.available_rows


def test_oversized_store_serves_via_shards(workload):
    """The same store auto-shards on the capped spec and matches the
    oversized single-machine reference bitwise."""
    knn, queries = workload["knn"], workload["queries"]
    model, example = knn.kernel()

    reference = C4CAMCompiler(UNBOUNDED).compile(model, example)
    sharded = C4CAMCompiler(CAPPED).compile(model, example)
    assert sharded.num_shards >= 2

    rv, ri = reference.run_batch(queries)
    hv, hi = sharded.run_batch(queries)
    np.testing.assert_array_equal(ri, hi)
    np.testing.assert_array_equal(rv, hv)

    # Every shard machine respects the 1-bank cap.
    session = sharded.session()
    for machine in session.machines:
        assert machine.banks_used <= CAPPED.banks

    # End-to-end classification matches the numpy golden model.
    predicted = np.array([knn.vote(row) for row in hi], dtype=np.int64)
    expected = knn.classify_reference(queries)
    np.testing.assert_array_equal(predicted, expected)

    ref_report, shard_report = reference.last_report, sharded.last_report
    shard_latencies = [s.last_report.query_latency_ns for s in session.sessions]
    print_series(
        f"shard capacity ({knn.patterns}x{FEATURES} store, "
        f"{sharded.num_shards} machines, B={QUERIES})",
        ["latency ns", "energy pJ", "banks", "qps"],
        [
            ("1 machine (uncapped)", [
                ref_report.query_latency_ns,
                ref_report.energy.query_total,
                ref_report.banks_used,
                ref_report.throughput_qps,
            ]),
            ("sharded (1-bank cap)", [
                shard_report.query_latency_ns,
                shard_report.energy.query_total,
                shard_report.banks_used,
                shard_report.throughput_qps,
            ]),
        ],
    )

    # Honest multi-machine accounting: energy and banks sum over
    # shards; latency is the slowest shard plus the merge hop, far from
    # the serial sum.
    assert shard_report.banks_used == sharded.num_shards * CAPPED.banks
    assert shard_report.query_latency_ns >= max(shard_latencies)
    assert shard_report.query_latency_ns < sum(shard_latencies)
    assert shard_report.energy.query_total >= max(
        s.last_report.energy.query_total for s in session.sessions
    )
    assert shard_report.throughput_qps > 0
