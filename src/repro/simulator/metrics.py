"""Execution metrics: latency, energy, power, EDP.

Latency is tracked by the executor's timing model (ns); the machine
accumulates dynamic energy (pJ) per component and computes standby energy
from the powered-instance counts when an execution finishes.

Multi-machine executions combine per-machine reports two ways:

* :func:`aggregate_reports` — **shards** of one logical store answering
  the *same* batch in parallel: latencies take the max over shards (plus
  an explicit cross-shard merge cost) while energy, allocation and work
  counts sum — N machines burn N machines' worth of energy and silicon.
* :func:`merge_concurrent_reports` — **replicas** serving *disjoint*
  traffic concurrently: latency is the longest lane, but ``queries``
  sum, so ``throughput_qps`` reflects the concurrency replication buys.
* :func:`combine_serial_reports` — **tenants** time-multiplexing one
  machine (multi-tenant bank placement): latency sums (the shared
  fabric serves one tenant at a time) and the per-tenant allocation
  counts sum to the machine's — the fabric is counted once, since
  bank-granular tenants partition it exactly.
* :func:`combine_epoch_reports` — **epochs** of one deployment whose
  membership changes over time (a cluster admitting and evicting
  tenants, defragmenting between epochs): time and work sum across
  epochs, but the allocation counts take the peak — the fleet re-uses
  the same silicon across epochs rather than occupying new fabric.

Zero-query reports are first-class citizens of every combiner: a tenant
admitted but never queried contributes a lane report with ``queries=0``
and ``query_latency_ns=0.0``, and the per-query helpers
(:attr:`ExecutionReport.throughput_qps`,
:attr:`~ExecutionReport.per_query_latency_ns`,
:attr:`~ExecutionReport.per_query_energy_pj`,
:attr:`~ExecutionReport.power_mw`) return ``0.0`` instead of dividing
by zero, both on the idle lane and on any combination that stays at
zero queries or zero latency.

All combiners require every report to come from the same architecture
(:attr:`ExecutionReport.spec`): summing energies or maxing latencies
across different machine models is meaningless, so a mismatch raises
instead of silently producing a chimera report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


@dataclass
class EnergyBreakdown:
    """Dynamic energy per component, in pJ."""

    search: float = 0.0
    read: float = 0.0
    merge: float = 0.0
    host: float = 0.0
    write: float = 0.0
    standby: float = 0.0

    @property
    def query_total(self) -> float:
        """Energy attributable to query execution (excludes writes)."""
        return self.search + self.read + self.merge + self.host + self.standby

    @property
    def total(self) -> float:
        return self.query_total + self.write

    def as_dict(self) -> Dict[str, float]:
        return {
            "search": self.search,
            "read": self.read,
            "merge": self.merge,
            "host": self.host,
            "write": self.write,
            "standby": self.standby,
        }


@dataclass
class ExecutionReport:
    """Metrics of one compiled-kernel execution (one query batch).

    Latencies in ns, energies in pJ; helpers convert to derived units.
    """

    query_latency_ns: float = 0.0
    setup_latency_ns: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    banks_used: int = 0
    mats_used: int = 0
    arrays_used: int = 0
    subarrays_used: int = 0
    searches: int = 0
    search_cycles: int = 0
    #: Physical rows touched by the write port (initial programming plus
    #: incremental inserts/updates/erases) — the unit the amortized-setup
    #: model charges mutation energy in.
    rows_written: int = 0
    queries: int = 1
    #: The architecture this report was measured on (``None`` for legacy
    #: or host-path reports).  The multi-machine combiners refuse to mix
    #: reports from different specs.
    spec: Optional[object] = None

    @property
    def query_energy_pj(self) -> float:
        """Per-execution query energy (pJ), excluding data loading."""
        return self.energy.query_total

    @property
    def power_mw(self) -> float:
        """Average power during query execution (mW).

        pJ/ns = mW, so the ratio is direct.
        """
        if self.query_latency_ns <= 0:
            return 0.0
        return self.energy.query_total / self.query_latency_ns

    @property
    def edp(self) -> float:
        """Energy-delay product in nJ·s per query batch."""
        return (self.energy.query_total * 1e-3) * (self.query_latency_ns * 1e-9)

    @property
    def per_query_latency_ns(self) -> float:
        """Mean latency per query; 0.0 for a zero-query execution."""
        if self.queries <= 0:
            return 0.0
        return self.query_latency_ns / self.queries

    @property
    def per_query_energy_pj(self) -> float:
        """Mean query energy per query; 0.0 for a zero-query execution."""
        if self.queries <= 0:
            return 0.0
        return self.energy.query_total / self.queries

    @property
    def throughput_qps(self) -> float:
        """Steady-state queries per second over the query clock.

        Setup (pattern programming) is excluded: it is charged once per
        session, amortized away by batching (`QuerySession.run_batch`).
        """
        if self.query_latency_ns <= 0 or self.queries <= 0:
            return 0.0
        return self.queries / (self.query_latency_ns * 1e-9)

    def scaled(self, n_queries: int) -> "ExecutionReport":
        """Extrapolate a single-query report to ``n_queries`` sequential
        queries (writes are not repeated)."""
        e = self.energy
        return ExecutionReport(
            query_latency_ns=self.query_latency_ns * n_queries,
            setup_latency_ns=self.setup_latency_ns,
            energy=EnergyBreakdown(
                search=e.search * n_queries,
                read=e.read * n_queries,
                merge=e.merge * n_queries,
                host=e.host * n_queries,
                write=e.write,
                standby=e.standby * n_queries,
            ),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            searches=self.searches * n_queries,
            search_cycles=self.search_cycles,
            rows_written=self.rows_written,
            queries=self.queries * n_queries,
            spec=self.spec,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"latency={self.query_latency_ns:.2f}ns "
            f"energy={self.energy.query_total:.2f}pJ "
            f"power={self.power_mw:.3f}mW "
            f"subarrays={self.subarrays_used} banks={self.banks_used}"
        )


def _common_spec(reports: Sequence[ExecutionReport], combiner: str):
    """The single arch spec behind ``reports``; raises on a mix.

    Reports without a recorded spec (legacy / host-path) are permissive:
    they combine with anything.  Two *different* recorded specs cannot be
    combined — maxing latencies or summing energies across machine
    models would silently fabricate a system that does not exist.
    """
    spec = None
    for report in reports:
        if report.spec is None:
            continue
        if spec is None:
            spec = report.spec
        elif report.spec != spec:
            raise ValueError(
                f"{combiner} cannot combine reports from different "
                f"architectures: all machines must share one ArchSpec "
                f"(got {spec!r} and {report.spec!r})"
            )
    return spec


def _combined_fields(reports: Sequence[ExecutionReport], combiner: str) -> dict:
    """The multi-machine field combinations both combiners share.

    Machines exist side by side whether they shard or replicate, so
    energies, allocation and work counts **sum**, ``search_cycles``
    stays a max (the busiest subarray anywhere) and setup latency is a
    max (machines program in parallel).  Only the latency/queries policy
    differs between the combiners.
    """
    energy = EnergyBreakdown()
    for report in reports:
        for key, value in report.energy.as_dict().items():
            setattr(energy, key, getattr(energy, key) + value)
    return dict(
        setup_latency_ns=max(r.setup_latency_ns for r in reports),
        energy=energy,
        banks_used=sum(r.banks_used for r in reports),
        mats_used=sum(r.mats_used for r in reports),
        arrays_used=sum(r.arrays_used for r in reports),
        subarrays_used=sum(r.subarrays_used for r in reports),
        searches=sum(r.searches for r in reports),
        search_cycles=max(r.search_cycles for r in reports),
        rows_written=sum(r.rows_written for r in reports),
        spec=_common_spec(reports, combiner),
    )


def aggregate_reports(
    reports: Sequence[ExecutionReport],
    merge_latency_ns: float = 0.0,
    merge_energy_pj: float = 0.0,
    queries: Optional[int] = None,
) -> ExecutionReport:
    """Combine per-shard reports into one honest multi-machine report.

    Shards run on separate machines in parallel, so latencies take the
    **max** over shards (plus the cross-shard merge cost, charged to
    latency and host energy) and energies, allocation counts and search
    totals **sum**; ``search_cycles`` stays a max (the busiest subarray
    anywhere).  ``queries`` defaults to the first shard's count (every
    shard sees the same batch).  All reports must come from the same
    :class:`~repro.arch.spec.ArchSpec` (``ValueError`` otherwise).  Used
    by :class:`repro.runtime.sharding.ShardedSession` and the sharded
    pattern matcher.
    """
    if not reports:
        raise ValueError("aggregate_reports needs at least one shard report")
    fields = _combined_fields(reports, "aggregate_reports")
    fields["energy"].host += merge_energy_pj
    return ExecutionReport(
        query_latency_ns=max(r.query_latency_ns for r in reports)
        + merge_latency_ns,
        queries=queries if queries is not None else reports[0].queries,
        **fields,
    )


def combine_serial_reports(
    reports: Sequence[ExecutionReport],
) -> ExecutionReport:
    """Combine per-tenant reports of kernels **time-multiplexing one
    machine** (multi-tenant bank placement).

    Colocated tenants occupy *disjoint* banks of the same fabric but the
    machine serves their batches one at a time, so query latency **sums**
    (the fabric is busy for the union of the tenants' batches) and so
    does setup latency (pattern programming shares the write path).
    Energy, queries, searches and the allocation counts sum as well —
    with bank-granular placement the tenants partition the fabric
    exactly, so the sum of per-tenant allocation *is* the machine's
    allocation, counted once.  ``search_cycles`` stays a max (the
    busiest subarray anywhere).  All reports must come from the same
    :class:`~repro.arch.spec.ArchSpec` (``ValueError`` otherwise).  Used
    by :class:`repro.runtime.placement.MultiTenantSession` for its
    per-machine view; machines of a fleet then merge via
    :func:`merge_concurrent_reports`.
    """
    if not reports:
        raise ValueError(
            "combine_serial_reports needs at least one tenant report"
        )
    fields = _combined_fields(reports, "combine_serial_reports")
    fields["setup_latency_ns"] = sum(r.setup_latency_ns for r in reports)
    return ExecutionReport(
        query_latency_ns=sum(r.query_latency_ns for r in reports),
        queries=sum(r.queries for r in reports),
        **fields,
    )


def merge_concurrent_reports(
    reports: Sequence[ExecutionReport],
) -> ExecutionReport:
    """Combine per-replica lane reports of a *replicated* deployment.

    Replicas are independent machines serving **disjoint** slices of the
    traffic at the same time, so the combined wall time is the longest
    lane (latency **max**) while ``queries``, energies, allocation and
    work counts **sum** — ``throughput_qps`` on the result therefore
    reflects the concurrency replication buys (R balanced replicas
    approach R× one machine's rate), and energy/area honestly scale with
    the replica count.  Setup latency is a max: replicas program in
    parallel.  All reports must come from the same
    :class:`~repro.arch.spec.ArchSpec` (``ValueError`` otherwise).  Used
    by :class:`repro.runtime.serving.ReplicatedSession`.
    """
    if not reports:
        raise ValueError(
            "merge_concurrent_reports needs at least one lane report"
        )
    return ExecutionReport(
        query_latency_ns=max(r.query_latency_ns for r in reports),
        queries=sum(r.queries for r in reports),
        **_combined_fields(reports, "merge_concurrent_reports"),
    )


def combine_epoch_reports(
    reports: Sequence[ExecutionReport],
) -> ExecutionReport:
    """Combine sequential *epochs* of one deployment over its lifetime.

    A fleet whose membership changes over time — a
    :class:`~repro.runtime.cluster.Cluster` admitting tenants, evicting
    them and defragmenting in between — closes an accounting epoch at
    every re-placement: the fleet report up to that moment is archived
    and fresh machines start a new one.  Epochs are strictly sequential
    on the wall clock, so query latency, setup latency (each epoch
    re-programs its machines), energy (writes genuinely re-paid),
    queries, searches and search cycles all **sum**; the allocation
    counts take the **max** over epochs — the deployment's peak
    footprint, since a rebuilt fleet reoccupies fabric rather than
    adding to it.  Zero-query epochs (an admit immediately followed by
    an evict) combine without disturbing any per-query figure.  All
    reports must come from the same :class:`~repro.arch.spec.ArchSpec`
    (``ValueError`` otherwise).
    """
    if not reports:
        raise ValueError(
            "combine_epoch_reports needs at least one epoch report"
        )
    fields = _combined_fields(reports, "combine_epoch_reports")
    fields["setup_latency_ns"] = sum(r.setup_latency_ns for r in reports)
    fields["search_cycles"] = sum(r.search_cycles for r in reports)
    fields["banks_used"] = max(r.banks_used for r in reports)
    fields["mats_used"] = max(r.mats_used for r in reports)
    fields["arrays_used"] = max(r.arrays_used for r in reports)
    fields["subarrays_used"] = max(r.subarrays_used for r in reports)
    return ExecutionReport(
        query_latency_ns=sum(r.query_latency_ns for r in reports),
        queries=sum(r.queries for r in reports),
        **fields,
    )
