"""Print/parse round-trip tests, including nested regions and attributes."""

import pytest

from repro.dialects import arith as arith_d
from repro.dialects import cim as cim_d
from repro.dialects import func as func_d
from repro.dialects import scf as scf_d
from repro.dialects import torch as torch_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.parser import ParseError, parse_module, parse_operation
from repro.ir.printer import print_module
from repro.ir.types import FunctionType, TensorType, f32, index
from repro.ir.verifier import verify


def roundtrip(module):
    text = print_module(module)
    module2 = parse_module(text)
    verify(module2)
    assert print_module(module2) == text
    return module2


def test_empty_module_roundtrip():
    roundtrip(ModuleOp())


def test_function_with_args_roundtrip():
    m = ModuleOp()
    t = TensorType([10, 64], f32)
    f = func_d.FuncOp("forward", FunctionType([t], [t]))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    b.create(func_d.ReturnOp, [f.arguments[0]])
    roundtrip(m)


def test_torch_kernel_roundtrip():
    m = ModuleOp()
    t = TensorType([10, 64], f32)
    f = func_d.FuncOp("forward", FunctionType([t, t], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    tr = b.create(torch_d.TransposeIntOp, f.arguments[1], -2, -1)
    mm = b.create(torch_d.MmOp, f.arguments[0], tr.result)
    k = b.create(torch_d.ConstantIntOp, 1)
    b.create(torch_d.TopkOp, mm.result, k.result, 1, largest=False)
    b.create(func_d.ReturnOp, [])
    roundtrip(m)


def test_nested_scf_roundtrip():
    m = ModuleOp()
    f = func_d.FuncOp("loops", FunctionType([], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    c0 = b.create(arith_d.ConstantOp, 0)
    c4 = b.create(arith_d.ConstantOp, 4)
    c1 = b.create(arith_d.ConstantOp, 1)
    outer = b.create(scf_d.ParallelOp, c0.result, c4.result, c1.result)
    inner_b = OpBuilder.at_end(outer.body)
    inner = inner_b.create(scf_d.ForOp, c0.result, c4.result, c1.result)
    OpBuilder.at_end(inner.body).create(scf_d.YieldOp, [])
    inner_b.create(scf_d.YieldOp, [])
    b.create(func_d.ReturnOp, [])
    roundtrip(m)


def test_cim_execute_region_roundtrip():
    m = ModuleOp()
    t = TensorType([10, 64], f32)
    f = func_d.FuncOp("k", FunctionType([t], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    dev = b.create(cim_d.AcquireOp)
    ex = b.create(
        cim_d.ExecuteOp, dev.result, [f.arguments[0]],
        [TensorType([64, 10], f32)],
    )
    body = OpBuilder.at_end(ex.body)
    tr = body.create(cim_d.TransposeOp, ex.body.arguments[0])
    body.create(cim_d.YieldOp, [tr.result])
    b.create(cim_d.ReleaseOp, dev.result)
    b.create(func_d.ReturnOp, [])
    m2 = roundtrip(m)
    ex2 = [op for op in m2.walk() if op.name == "cim.execute"][0]
    assert isinstance(ex2, cim_d.ExecuteOp)


def test_scf_if_two_regions_roundtrip():
    m = ModuleOp()
    f = func_d.FuncOp("g", FunctionType([], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    c0 = b.create(arith_d.ConstantOp, 0)
    c1 = b.create(arith_d.ConstantOp, 1)
    cmp = b.create(arith_d.CmpIOp, "slt", c0.result, c1.result)
    if_op = b.create(scf_d.IfOp, cmp.result)
    OpBuilder.at_end(if_op.then_block).create(arith_d.ConstantOp, 7)
    b.create(func_d.ReturnOp, [])
    roundtrip(m)


def test_parse_single_operation():
    op = parse_operation('%0 = "arith.constant"() {value = 3 : i64} : () -> index')
    assert op.name == "arith.constant"
    assert op.attributes["value"].value == 3


def test_parse_undefined_value_rejected():
    with pytest.raises(ParseError):
        parse_operation('"arith.addi"(%x, %x) : (index, index) -> index')


def test_parse_operand_type_mismatch_rejected():
    text = (
        '"builtin.module"() ({\n'
        '  "func.func"() ({\n'
        '  ^bb0(%arg0: i32):\n'
        '    "func.return"(%arg0) : (i64) -> ()\n'
        '  }) {function_type = (i32) -> (), sym_name = "f"} : () -> ()\n'
        '}) : () -> ()'
    )
    with pytest.raises(ParseError):
        parse_module(text)


def test_parse_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_module('"builtin.module"() ({}) : () -> () extra')


def test_parse_result_count_mismatch():
    with pytest.raises(ParseError):
        parse_operation(
            '%0, %1 = "arith.constant"() {value = 1 : i64} : () -> index'
        )


def test_comments_skipped():
    text = (
        '// a leading comment\n'
        '"builtin.module"() ({\n'
        '  // inside\n'
        '}) : () -> ()'
    )
    m = parse_module(text)
    verify(m)


def test_string_attr_with_special_chars_roundtrip():
    m = ModuleOp()
    from repro.ir.operation import Operation

    m.append(Operation("test.op", attributes={"s": 'a "quoted", thing'}))
    text = print_module(m)
    m2 = parse_module(text)
    op2 = m2.body.operations[0]
    assert op2.attributes["s"].value == 'a "quoted", thing'
