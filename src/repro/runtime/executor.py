"""IR interpreter with a structural timing model.

The executor runs lowered modules against a
:class:`~repro.simulator.machine.CamMachine`.  Its clock follows the IR's
control structure:

* ``scf.for`` bodies execute back-to-back — serialized levels and batch
  loops accumulate latency;
* ``scf.parallel`` iterations all start at the loop's start time and the
  loop completes at the **maximum** iteration end time — parallel levels
  overlap completely;
* device ops advance the clock by the duration the machine reports;
* ``cam.write_value`` is charged to a separate *setup* clock (stored
  patterns are programmed once, queries stream afterwards).

The same interpreter executes pre-lowering IR (torch / cim dialects) with
numpy semantics at zero cost — that is the host reference path used for
functional validation.

The ``cam`` handlers are batch-tolerant: score buffers and partials may
carry a leading query-batch axis (one row per in-flight query), in which
case reads, merges and the final top-k operate on the whole batch in one
vectorized step.  :class:`repro.runtime.session.QuerySession` uses the
same machine entry points to stream query batches against a machine that
was programmed once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType
from repro.ir.value import Value
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport

from . import values as host


class ExecutionError(RuntimeError):
    """The interpreter hit an unsupported op or inconsistent state."""


class _Env:
    """SSA value bindings (chained per region for clarity)."""

    def __init__(self):
        self._bindings: Dict[int, object] = {}

    def set(self, value: Value, obj) -> None:
        self._bindings[id(value)] = obj

    def get(self, value: Value):
        try:
            return self._bindings[id(value)]
        except KeyError:
            raise ExecutionError(f"unbound SSA value: {value!r}") from None


class Interpreter:
    """Executes one module; create one per execution."""

    def __init__(
        self,
        module: ModuleOp,
        machine: Optional[CamMachine] = None,
        subarray_base: int = 0,
    ):
        self.module = module
        self.machine = machine
        #: Linear-index origin of this module's subarrays on the machine.
        #: A module compiled standalone addresses subarrays 0..N-1 through
        #: ``cam.subarray_ref``; when several modules share one machine
        #: (multi-tenant placement), each walk resolves its references
        #: relative to the subarrays it allocated itself.
        self.subarray_base = int(subarray_base)
        self.setup_time = 0.0
        # Queries answered: each cam.query_start opens a segment that
        # counts 1 query, widened to B when a batched (B×C) search
        # streams through it.
        self.query_count = 0
        self._segment_batch = 0

    def _flush_query_segment(self) -> None:
        self.query_count += self._segment_batch
        self._segment_batch = 0

    # ------------------------------------------------------------- running
    def run_function(
        self, name: str, inputs: Sequence[np.ndarray]
    ) -> Tuple[List[np.ndarray], Optional[ExecutionReport]]:
        """Run ``name`` on ``inputs``; returns (outputs, report).

        The report is None when no machine is attached (host path).
        """
        func = self.module.lookup_symbol(name)
        if func is None:
            raise ExecutionError(f"no function named {name!r}")
        env = _Env()
        block = func.body
        if len(block.arguments) != len(inputs):
            raise ExecutionError(
                f"{name} expects {len(block.arguments)} arguments, "
                f"got {len(inputs)}"
            )
        for arg, value in zip(block.arguments, inputs):
            env.set(arg, _coerce_input(arg, value))
        results, t_end = self._run_block(block, env, 0.0)
        self._flush_query_segment()
        outputs = [np.asarray(r) for r in results]
        report = None
        if self.machine is not None:
            report = self.machine.finish(t_end, self.setup_time)
            # The true count: a setup-only walk reports 0 queries rather
            # than masquerading as 1 (consumers guard their divisions via
            # ExecutionReport.per_query_*).
            report.queries = self.query_count
        return outputs, report

    def _run_block(self, block, env: _Env, t: float):
        """Execute a block; returns (terminator operand values, end time)."""
        for op in block.operations:
            if op.name in ("func.return", "scf.yield", "cim.yield"):
                return [env.get(v) for v in op.operands], t
            t = self._eval(op, env, t)
        return [], t

    # ---------------------------------------------------------- dispatcher
    def _eval(self, op: Operation, env: _Env, t: float) -> float:
        handler = _HANDLERS.get(op.name)
        if handler is None:
            raise ExecutionError(f"unsupported op in executor: {op.name}")
        return handler(self, op, env, t)

    def _require_machine(self, op: Operation) -> CamMachine:
        if self.machine is None:
            raise ExecutionError(
                f"{op.name} requires a CamMachine (host path cannot run "
                f"lowered cam IR)"
            )
        return self.machine


def _coerce_input(arg: Value, value) -> object:
    if isinstance(arg.type, (TensorType, MemRefType)):
        arr = np.asarray(value)
        if tuple(arr.shape) != tuple(arg.type.shape):
            raise ExecutionError(
                f"input shape {arr.shape} does not match {arg.type}"
            )
        return arr
    return value


# ---------------------------------------------------------------- handlers
_HANDLERS = {}


def _op(name):
    def wrap(fn):
        _HANDLERS[name] = fn
        return fn

    return wrap


# ----- arith ---------------------------------------------------------------
@_op("arith.constant")
def _arith_constant(ip, op, env, t):
    env.set(op.result, op.attributes["value"].value)
    return t


def _binary(fn):
    def handler(ip, op, env, t):
        a, b = env.get(op.operands[0]), env.get(op.operands[1])
        env.set(op.result, fn(a, b))
        return t

    return handler


_HANDLERS["arith.addi"] = _binary(lambda a, b: a + b)
_HANDLERS["arith.subi"] = _binary(lambda a, b: a - b)
_HANDLERS["arith.muli"] = _binary(lambda a, b: a * b)
_HANDLERS["arith.divsi"] = _binary(lambda a, b: a // b)
_HANDLERS["arith.remsi"] = _binary(lambda a, b: a % b)
_HANDLERS["arith.minsi"] = _binary(min)
_HANDLERS["arith.addf"] = _binary(lambda a, b: a + b)
_HANDLERS["arith.subf"] = _binary(lambda a, b: a - b)
_HANDLERS["arith.mulf"] = _binary(lambda a, b: a * b)
_HANDLERS["arith.divf"] = _binary(lambda a, b: a / b)


@_op("arith.sqrt")
def _arith_sqrt(ip, op, env, t):
    env.set(op.result, np.sqrt(env.get(op.operands[0])))
    return t


@_op("arith.cmpi")
def _arith_cmpi(ip, op, env, t):
    a, b = env.get(op.operands[0]), env.get(op.operands[1])
    pred = op.attributes["predicate"].value
    result = {
        "eq": a == b, "ne": a != b, "slt": a < b,
        "sle": a <= b, "sgt": a > b, "sge": a >= b,
    }[pred]
    env.set(op.result, bool(result))
    return t


@_op("arith.select")
def _arith_select(ip, op, env, t):
    cond = env.get(op.operands[0])
    env.set(op.result, env.get(op.operands[1 if cond else 2]))
    return t


@_op("arith.index_cast")
def _arith_index_cast(ip, op, env, t):
    env.set(op.result, int(env.get(op.operands[0])))
    return t


# ----- scf ------------------------------------------------------------------
@_op("scf.for")
def _scf_for(ip, op, env, t):
    lb = int(env.get(op.lower_bound))
    ub = int(env.get(op.upper_bound))
    step = int(env.get(op.step))
    carried = [env.get(v) for v in op.init_values]
    for iv in range(lb, ub, step):
        env.set(op.induction_var, iv)
        for arg, val in zip(op.iter_args, carried):
            env.set(arg, val)
        yielded, t = ip._run_block(op.body, env, t)
        carried = yielded
    for res, val in zip(op.results, carried):
        env.set(res, val)
    return t


@_op("scf.parallel")
def _scf_parallel(ip, op, env, t):
    lb = int(env.get(op.lower_bound))
    ub = int(env.get(op.upper_bound))
    step = int(env.get(op.step))
    t_end = t
    for iv in range(lb, ub, step):
        env.set(op.induction_var, iv)
        _yielded, t_iter = ip._run_block(op.body, env, t)
        t_end = max(t_end, t_iter)
    return t_end


@_op("scf.if")
def _scf_if(ip, op, env, t):
    cond = env.get(op.condition)
    block = op.then_block if cond else op.else_block
    yielded, t = ip._run_block(block, env, t)
    for res, val in zip(op.results, yielded):
        env.set(res, val)
    return t


# ----- memref ---------------------------------------------------------------
@_op("memref.alloc")
def _memref_alloc(ip, op, env, t):
    mtype = op.result.type
    dtype = np.int64 if str(mtype.element_type) == "i64" else np.float64
    env.set(op.result, np.zeros(mtype.shape, dtype=dtype))
    return t


@_op("memref.dealloc")
def _memref_dealloc(ip, op, env, t):
    return t


@_op("memref.copy")
def _memref_copy(ip, op, env, t):
    src, dst = env.get(op.operands[0]), env.get(op.operands[1])
    dst[...] = src
    return t


@_op("memref.fill")
def _memref_fill(ip, op, env, t):
    env.get(op.operands[0])[...] = op.attributes["value"].value
    return t


@_op("memref.to_memref")
def _memref_to_memref(ip, op, env, t):
    env.set(op.result, np.array(env.get(op.operands[0]), dtype=np.float64))
    return t


@_op("memref.to_tensor")
def _memref_to_tensor(ip, op, env, t):
    buf = np.array(env.get(op.operands[0]))
    ttype = op.result.type
    dtype = np.int64 if str(ttype.element_type) == "i64" else np.float32
    env.set(op.result, buf.reshape(ttype.shape).astype(dtype))
    return t


def _resolve_offsets(op, env):
    """Static/dynamic offsets of a subview/slice op."""
    offsets = []
    dyn = list(op.operands[1:])
    for off in (a.value for a in op.attributes["static_offsets"]):
        if off == -1:
            offsets.append(int(env.get(dyn.pop(0))))
        else:
            offsets.append(off)
    return offsets


@_op("memref.subview")
def _memref_subview(ip, op, env, t):
    src = env.get(op.operands[0])
    offsets = _resolve_offsets(op, env)
    sizes = [a.value for a in op.attributes["static_sizes"]]
    slices = tuple(slice(o, o + s) for o, s in zip(offsets, sizes))
    env.set(op.result, src[slices])
    return t


@_op("memref.load")
def _memref_load(ip, op, env, t):
    buf = env.get(op.operands[0])
    idx = tuple(int(env.get(v)) for v in op.operands[1:])
    env.set(op.result, buf[idx])
    return t


@_op("memref.store")
def _memref_store(ip, op, env, t):
    value = env.get(op.operands[0])
    buf = env.get(op.operands[1])
    idx = tuple(int(env.get(v)) for v in op.operands[2:])
    buf[idx] = value
    return t


# ----- tensor ---------------------------------------------------------------
@_op("tensor.empty")
def _tensor_empty(ip, op, env, t):
    ttype = op.result.type
    dtype = np.int64 if str(ttype.element_type) == "i64" else np.float32
    env.set(op.result, np.zeros(ttype.shape, dtype=dtype))
    return t


@_op("tensor.splat")
def _tensor_splat(ip, op, env, t):
    ttype = op.result.type
    env.set(op.result, np.full(ttype.shape, env.get(op.operands[0])))
    return t


@_op("tensor.extract_slice")
def _tensor_extract_slice(ip, op, env, t):
    src = env.get(op.operands[0])
    offsets = _resolve_offsets(op, env)
    sizes = [a.value for a in op.attributes["static_sizes"]]
    slices = tuple(slice(o, o + s) for o, s in zip(offsets, sizes))
    env.set(op.result, np.array(src[slices]))
    return t


@_op("tensor.insert_slice")
def _tensor_insert_slice(ip, op, env, t):
    src = env.get(op.operands[0])
    dest = np.array(env.get(op.operands[1]))
    offsets = [a.value for a in op.attributes["static_offsets"]]
    slices = tuple(
        slice(o, o + s) for o, s in zip(offsets, np.asarray(src).shape)
    )
    dest[slices] = src
    env.set(op.result, dest)
    return t


@_op("tensor.dim")
def _tensor_dim(ip, op, env, t):
    env.set(op.result, int(np.asarray(env.get(op.operands[0])).shape[op.dim]))
    return t


# ----- cam ------------------------------------------------------------------
@_op("cam.alloc_bank")
def _cam_alloc_bank(ip, op, env, t):
    env.set(op.result, ip._require_machine(op).alloc_bank())
    return t


@_op("cam.alloc_mat")
def _cam_alloc_mat(ip, op, env, t):
    machine = ip._require_machine(op)
    env.set(op.result, machine.alloc_mat(env.get(op.operands[0])))
    return t


@_op("cam.alloc_array")
def _cam_alloc_array(ip, op, env, t):
    machine = ip._require_machine(op)
    env.set(op.result, machine.alloc_array(env.get(op.operands[0])))
    return t


@_op("cam.alloc_subarray")
def _cam_alloc_subarray(ip, op, env, t):
    machine = ip._require_machine(op)
    env.set(op.result, machine.alloc_subarray(env.get(op.operands[0])))
    return t


@_op("cam.subarray_ref")
def _cam_subarray_ref(ip, op, env, t):
    machine = ip._require_machine(op)
    lin = ip.subarray_base + int(env.get(op.operands[0]))
    if lin >= machine.subarrays_used:
        raise ExecutionError(
            f"cam.subarray_ref {lin} exceeds allocated "
            f"{machine.subarrays_used} subarrays"
        )
    env.set(op.result, lin)
    return t


@_op("cam.query_start")
def _cam_query_start(ip, op, env, t):
    machine = ip._require_machine(op)
    machine.begin_query()
    ip._flush_query_segment()
    ip._segment_batch = 1
    return t + machine.frontend_latency()


@_op("cam.write_value")
def _cam_write_value(ip, op, env, t):
    machine = ip._require_machine(op)
    duration = machine.write_value(
        env.get(op.operands[0]),
        np.asarray(env.get(op.operands[1])),
        op.row_offset,
        at=ip.setup_time,
    )
    ip.setup_time += duration
    return t


@_op("cam.search")
def _cam_search(ip, op, env, t):
    machine = ip._require_machine(op)
    query = np.asarray(env.get(op.operands[1]))
    if query.ndim > 1 and query.shape[0] > ip._segment_batch:
        ip._segment_batch = query.shape[0]
    duration = machine.search(
        env.get(op.operands[0]),
        query,
        search_type=op.search_type,
        metric=op.metric,
        row_begin=op.row_begin,
        row_count=op.row_count,
        accumulate=op.accumulate,
        at=t,
    )
    return t + duration


@_op("cam.read")
def _cam_read(ip, op, env, t):
    machine = ip._require_machine(op)
    values, indices, duration = machine.read_batch(
        env.get(op.operands[0]), op.rows, at=t
    )
    if values.shape[0] == 1:
        # Single-query latch bank: column-vector layout, as the
        # per-query merge nest expects.
        env.set(op.results[0], values[0].reshape(-1, 1))
    else:
        # Batched latch bank (QuerySession path): one row per query.
        env.set(op.results[0], values)
    env.set(op.results[1], indices.reshape(-1, 1))
    return t + duration


@_op("cam.merge_partial")
def _cam_merge_partial(ip, op, env, t):
    machine = ip._require_machine(op)
    acc = env.get(op.operands[0])
    partial = np.asarray(env.get(op.operands[1]))
    if op.num_operands > 2:
        offset = int(env.get(op.operands[2]))
    else:
        offset = op.row_offset
    batched = (
        acc.ndim == 2 and partial.ndim == 2
        and acc.shape[0] == partial.shape[0] and acc.shape[0] > 1
    )
    if not batched:
        # A single-query partial is a column vector (rows, 1); a (B>1,
        # rows>1) matrix is a batched latch bank that must not be
        # flattened into a per-query accumulator.
        if partial.ndim == 2 and partial.shape[0] > 1 and partial.shape[1] > 1:
            raise ExecutionError(
                f"cam.merge_partial: batched partial of {partial.shape[0]} "
                f"queries needs an accumulator with a matching batch "
                f"axis, got shape {acc.shape}"
            )
        acc = acc.reshape(-1)
        partial = partial.reshape(-1)
    n = min(partial.shape[-1], acc.shape[-1] - offset)
    n_queries = acc.shape[0] if batched else 1
    if n > 0:
        if op.direction == "horizontal":
            acc[..., offset : offset + n] += partial[..., :n]
        else:
            acc[..., offset : offset + n] = partial[..., :n]
    duration = machine.merge(op.level, max(n, 0), at=t, n_queries=n_queries)
    return t + duration


@_op("cam.sync")
def _cam_sync(ip, op, env, t):
    machine = ip._require_machine(op)
    # A batched walk streams every in-flight query through the hop.
    n_queries = max(ip._segment_batch, 1)
    return t + machine.merge(op.level, op.rows, at=t, n_queries=n_queries)


@_op("cam.select_topk")
def _cam_select_topk(ip, op, env, t):
    machine = ip._require_machine(op)
    scores = env.get(op.operands[0])
    if scores.ndim == 2 and scores.shape[0] > 1:
        # Batched score matrix (one row per query): per-query top-k.
        values, indices, duration = machine.select_topk_batch(
            scores, op.k, op.largest, at=t
        )
        env.get(op.operands[1])[:, : op.k] = values
        env.get(op.operands[2])[:, : op.k] = indices
        return t + duration
    values, indices, duration = machine.select_topk(
        scores.reshape(-1), op.k, op.largest, at=t
    )
    env.get(op.operands[1]).reshape(-1)[: op.k] = values
    env.get(op.operands[2]).reshape(-1)[: op.k] = indices
    return t + duration


# ----- torch (host reference) ----------------------------------------------
@_op("torch.constant.int")
def _torch_const_int(ip, op, env, t):
    env.set(op.result, op.attributes["value"].value)
    return t


@_op("torch.constant.bool")
def _torch_const_bool(ip, op, env, t):
    env.set(op.result, op.attributes["value"].value)
    return t


@_op("torch.aten.transpose.int")
def _torch_transpose(ip, op, env, t):
    env.set(
        op.result,
        host.transpose(env.get(op.operands[0]), op.dim0, op.dim1),
    )
    return t


def _host_matmul(ip, op, env, t):
    env.set(
        op.result, host.matmul(env.get(op.operands[0]), env.get(op.operands[1]))
    )
    return t


_HANDLERS["torch.aten.mm"] = _host_matmul
_HANDLERS["torch.aten.matmul"] = _host_matmul


@_op("torch.aten.sub")
def _torch_sub(ip, op, env, t):
    env.set(op.result, env.get(op.operands[0]) - env.get(op.operands[1]))
    return t


@_op("torch.aten.div")
def _torch_div(ip, op, env, t):
    out = env.get(op.operands[0])
    for divisor in op.operands[1:]:
        out = out / env.get(divisor)
    env.set(op.result, out)
    return t


@_op("torch.aten.norm")
def _torch_norm(ip, op, env, t):
    env.set(
        op.result,
        host.norm(
            env.get(op.operands[0]),
            op.attributes["p"].value,
            op.attributes["dim"].value,
            op.attributes["keepdim"].value,
        ),
    )
    return t


@_op("torch.aten.topk")
def _torch_topk(ip, op, env, t):
    values, indices = host.topk(
        env.get(op.operands[0]),
        op.attributes["k"].value,
        op.attributes["dim"].value,
        op.attributes["largest"].value,
    )
    env.set(op.results[0], values)
    env.set(op.results[1], indices)
    return t


# ----- cim (host reference path) --------------------------------------------
@_op("cim.acquire")
def _cim_acquire(ip, op, env, t):
    env.set(op.result, object())
    return t


@_op("cim.release")
def _cim_release(ip, op, env, t):
    return t


@_op("cim.execute")
def _cim_execute(ip, op, env, t):
    body = op.body
    for arg, v in zip(body.arguments, op.inputs):
        env.set(arg, env.get(v))
    yielded, t = ip._run_block(body, env, t)
    for res, val in zip(op.results, yielded):
        env.set(res, val)
    return t


@_op("cim.transpose")
def _cim_transpose(ip, op, env, t):
    env.set(
        op.result,
        host.transpose(
            env.get(op.operands[0]),
            op.attributes["dim0"].value,
            op.attributes["dim1"].value,
        ),
    )
    return t


@_op("cim.matmul")
def _cim_matmul(ip, op, env, t):
    env.set(
        op.result, host.matmul(env.get(op.operands[0]), env.get(op.operands[1]))
    )
    return t


@_op("cim.sub")
def _cim_sub(ip, op, env, t):
    env.set(op.result, env.get(op.operands[0]) - env.get(op.operands[1]))
    return t


@_op("cim.div")
def _cim_div(ip, op, env, t):
    out = env.get(op.operands[0])
    for divisor in op.operands[1:]:
        out = out / env.get(divisor)
    env.set(op.result, out)
    return t


@_op("cim.norm")
def _cim_norm(ip, op, env, t):
    env.set(
        op.result,
        host.norm(
            env.get(op.operands[0]),
            op.attributes["p"].value,
            op.attributes["dim"].value,
            op.attributes["keepdim"].value,
        ),
    )
    return t


@_op("cim.topk")
def _cim_topk(ip, op, env, t):
    values, indices = host.topk(
        env.get(op.operands[0]),
        op.attributes["k"].value,
        dim=-1,
        largest=op.attributes["largest"].value,
    )
    env.set(op.results[0], values)
    env.set(op.results[1], indices)
    return t


@_op("cim.similarity")
def _cim_similarity(ip, op, env, t):
    values, indices = host.similarity(
        op.metric,
        env.get(op.operands[0]),
        env.get(op.operands[1]),
        op.k,
        op.largest,
    )
    env.set(op.results[0], values.reshape(op.results[0].type.shape))
    env.set(op.results[1], indices.reshape(op.results[1].type.shape))
    return t


@_op("cim.score")
def _cim_score(ip, op, env, t):
    scores = host.similarity_scores(
        op.metric, env.get(op.operands[0]), env.get(op.operands[1])
    )
    env.set(op.result, scores.reshape(op.result.type.shape).astype(np.float32))
    return t


@_op("cim.merge_partial")
def _cim_merge_partial(ip, op, env, t):
    acc = np.array(env.get(op.operands[0]))
    partial = np.asarray(env.get(op.operands[1]))
    if op.direction == "horizontal":
        acc = acc + partial
    else:
        acc = np.concatenate([acc, partial], axis=0)
    env.set(op.result, acc)
    return t
