"""MLIR-style dialects used by the C4CAM lowering pipeline.

* :mod:`repro.dialects.func` / :mod:`~repro.dialects.arith` /
  :mod:`~repro.dialects.tensor` / :mod:`~repro.dialects.memref` /
  :mod:`~repro.dialects.scf` — standard structural dialects.
* :mod:`repro.dialects.torch` — the subset of ATen the frontend emits,
  including the paper's frontend extension (``norm``/``topk``).
* :mod:`repro.dialects.cim` — the generic compute-in-memory abstraction
  (acquire/execute/release + compute ops + similarity + merge_partial).
* :mod:`repro.dialects.cam` — the CAM device abstraction
  (alloc_bank/mat/array/subarray, write_value, search, read, merges).
"""

from repro.ir.context import load_all_dialects

__all__ = ["load_all_dialects"]
