"""The replicated async serving layer: replicas, engine, concurrency.

Covers :class:`~repro.runtime.serving.ReplicatedSession` (cloning
without recompiling, least-loaded routing, concurrent lane reports) and
:class:`~repro.runtime.serving.ServingEngine` (micro-batch coalescing,
per-request futures, error delivery, clean shutdown) — including a
multi-producer soak test asserting that no result is ever cross-wired
between interleaved requests.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.backend import ClusterShutdown
from repro.runtime.serving import ReplicatedSession, ServingEngine
from repro.runtime.session import SessionError
from repro.runtime.sharding import ShardedSession
from repro.simulator.metrics import (
    EnergyBreakdown,
    ExecutionReport,
    combine_epoch_reports,
    combine_serial_reports,
    merge_concurrent_reports,
)


def compile_dot(dot_kernel, stored, shape, k=1, **kw):
    return C4CAMCompiler(kw.pop("spec", paper_spec())).compile(
        dot_kernel(stored, k=k), [placeholder(shape)], **kw
    )


@pytest.fixture()
def bipolar_store(rng):
    """Distinct bipolar rows: query == row i finds top-1 index i."""
    return rng.choice([-1.0, 1.0], (32, 64)).astype(np.float32)


# --------------------------------------------------------------------------
# ReplicatedSession: cloning, routing, honest concurrent reports
# --------------------------------------------------------------------------
class TestReplicatedSession:
    def test_clone_shares_compiled_artifacts(self, dot_kernel, bipolar_store):
        kernel = compile_dot(
            dot_kernel, bipolar_store, (1, 64), spec=dse_spec(16),
            num_replicas=3,
        )
        session = kernel.session()
        assert isinstance(session, ReplicatedSession)
        assert session.num_replicas == 3
        base, *clones = session.replicas
        for clone in clones:
            # Same lowered module and query program — nothing recompiled.
            assert clone.module is base.module
            assert clone.program is base.program
            # But an independently programmed machine.
            assert clone.machine is not base.machine
            assert clone.machine.energy.write == base.machine.energy.write

    def test_sharded_clone_shares_shard_set(self, dot_kernel, bipolar_store):
        kernel = compile_dot(
            dot_kernel, bipolar_store, (1, 64), spec=dse_spec(16),
            num_shards=2, num_replicas=2,
        )
        session = kernel.session()
        assert isinstance(session, ReplicatedSession)
        base, clone = session.replicas
        assert isinstance(base, ShardedSession)
        assert clone.shard_set is base.shard_set
        assert len(session.machines) == 4  # 2 replicas x 2 shards

    def test_results_match_unreplicated(self, dot_kernel, bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (7, 64)).astype(np.float32)
        plain = compile_dot(dot_kernel, bipolar_store, (1, 64), k=3,
                            spec=dse_spec(16))
        replicated = compile_dot(dot_kernel, bipolar_store, (1, 64), k=3,
                                 spec=dse_spec(16), num_replicas=2)
        pv, pi = plain.run_batch(queries)
        for _ in range(3):  # every routed replica answers identically
            rv, ri = replicated.run_batch(queries)
            np.testing.assert_array_equal(pv, rv)
            np.testing.assert_array_equal(pi, ri)

    def test_least_loaded_routing_balances(self, dot_kernel, bipolar_store,
                                           rng):
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=3)
        session = kernel.session()
        for _ in range(6):
            session.run_batch(queries)
        lanes = session.lane_reports()
        assert [lane.queries for lane in lanes] == [8, 8, 8]

    def test_report_scales_with_replicas(self, dot_kernel, bipolar_store,
                                         rng):
        queries = rng.choice([-1.0, 1.0], (5, 64)).astype(np.float32)
        plain = compile_dot(dot_kernel, bipolar_store, (1, 64),
                            spec=dse_spec(16))
        plain.run_batch(queries)
        single = plain.last_report

        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=2)
        session = kernel.session()
        for _ in range(4):  # 2 batches per lane
            session.run_batch(queries)
        report = session.report()
        # Lanes ran concurrently: wall time is one lane (2 batches), but
        # all 20 queries count -> throughput reflects the concurrency.
        assert report.queries == 20
        assert report.query_latency_ns == pytest.approx(
            2 * single.query_latency_ns
        )
        assert report.throughput_qps == pytest.approx(
            2 * single.throughput_qps
        )
        # Energy and silicon scale with R: 2 machines, 2x write energy.
        assert report.energy.write == pytest.approx(2 * single.energy.write)
        assert report.banks_used == 2 * single.banks_used
        assert session.chip_area_mm2() == pytest.approx(
            2 * session.replicas[0].machine.chip_area_mm2()
        )
        # Setup programs in parallel across replicas.
        assert report.setup_latency_ns == pytest.approx(
            single.setup_latency_ns
        )

    def test_reset_clears_lanes(self, dot_kernel, bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (3, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=2)
        session = kernel.session()
        session.run_batch(queries)
        session.reset()
        assert session.report().queries == 0
        assert session.batches_run == 0
        # Patterns survive: serving still works without re-programming.
        writes = [m.energy.write for m in session.machines]
        session.run_batch(queries)
        assert [m.energy.write for m in session.machines] == writes

    def test_invalid_replication_rejected(self, dot_kernel, bipolar_store):
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        with pytest.raises(SessionError, match="replica"):
            ReplicatedSession(kernel.session(), 0)
        with pytest.raises(SessionError, match="clone"):
            ReplicatedSession(object(), 2)
        with pytest.raises(ValueError, match="num_replicas"):
            compile_dot(dot_kernel, bipolar_store, (1, 64),
                        spec=dse_spec(16), num_replicas=0)
        with pytest.raises(ValueError, match="lower_to_cam"):
            compile_dot(dot_kernel, bipolar_store, (1, 64),
                        spec=dse_spec(16), num_replicas=2,
                        lower_to_cam=False)


# --------------------------------------------------------------------------
# ServingEngine: coalescing, futures, shutdown
# --------------------------------------------------------------------------
class TestServingEngine:
    def test_single_query_futures_match_run_batch(self, dot_kernel,
                                                  bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64), k=2,
                             spec=dse_spec(16), num_replicas=2)
        direct_v, direct_i = kernel.run_batch(queries)
        with kernel.serve(max_batch=4, max_wait=0.001) as engine:
            futures = [engine.submit(q) for q in queries]
            for row, future in enumerate(futures):
                values, indices = future.result(timeout=30)
                assert values.shape == (1, 2) and indices.shape == (1, 2)
                np.testing.assert_array_equal(values[0], direct_v[row])
                np.testing.assert_array_equal(indices[0], direct_i[row])

    def test_batch_requests_and_map(self, dot_kernel, bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (9, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64), k=1,
                             spec=dse_spec(16))
        direct_v, direct_i = kernel.run_batch(queries)
        with kernel.serve(max_batch=4) as engine:
            chunk = engine.submit(queries[:3])         # one 3-row request
            singles = engine.map(queries[3:])          # six 1-row requests
            cv, ci = chunk.result(timeout=30)
            np.testing.assert_array_equal(cv, direct_v[:3])
            np.testing.assert_array_equal(ci, direct_i[:3])
            for offset, future in enumerate(singles, start=3):
                _v, indices = future.result(timeout=30)
                np.testing.assert_array_equal(indices[0], direct_i[offset])

    def test_micro_batches_respect_max_batch(self, dot_kernel, bipolar_store,
                                             rng):
        queries = rng.choice([-1.0, 1.0], (10, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        engine = kernel.serve(max_batch=4, max_wait=0.05)
        futures = [engine.submit(q) for q in queries]
        for future in futures:
            future.result(timeout=30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests_submitted"] == 10
        # 10 single-row requests coalesce into ceil(10/4)..10 batches
        # (timing-dependent), never fewer than the cap allows.
        assert 3 <= stats["batches_dispatched"] <= 10
        assert sum(stats["rows_dispatched"]) == 10
        assert stats["outstanding_rows"] == 0

    def test_max_wait_flushes_partial_batches(self, dot_kernel,
                                              bipolar_store):
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        # max_batch is far larger than the workload: only the max_wait
        # timer can close the batch.
        with kernel.serve(max_batch=1024, max_wait=0.01) as engine:
            future = engine.submit(bipolar_store[5])
            _values, indices = future.result(timeout=30)
            assert indices[0, 0] == 5

    def test_mismatched_width_rejected_at_submit(self, dot_kernel,
                                                 bipolar_store):
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        with kernel.serve() as engine:
            with pytest.raises(ValueError, match="width"):
                engine.submit(np.ones(32))
            with pytest.raises(ValueError, match="1-D"):
                engine.submit(np.ones((0, 64)))

    def test_backend_failure_delivered_to_futures(self):
        class Exploding:
            def run_batch(self, queries):
                raise RuntimeError("device on fire")

        with ServingEngine([Exploding()], max_batch=2) as engine:
            future = engine.submit(np.ones(8))
            with pytest.raises(RuntimeError, match="on fire"):
                future.result(timeout=30)
            # The lane survives a failed batch: later requests still fail
            # loudly rather than hanging.
            again = engine.submit(np.ones(8))
            with pytest.raises(RuntimeError, match="on fire"):
                again.result(timeout=30)

    def test_unsplittable_result_delivered_not_stranded(self):
        """A result the splitter cannot slice must fail the batch's
        futures (with the advice to pass split=), not kill the worker
        and strand every later future on that lane."""
        class DictResult:
            def run_batch(self, queries):
                return {"values": queries}  # _default_split can't slice

        with ServingEngine([DictResult()], max_batch=2) as engine:
            first = engine.submit(np.ones(4))
            with pytest.raises(TypeError, match="split"):
                first.result(timeout=30)
            # The lane survived: the next request is served (and fails
            # the same way), not left pending forever.
            second = engine.submit(np.ones(4))
            with pytest.raises(TypeError, match="split"):
                second.result(timeout=30)

    def test_shutdown_drains_in_flight(self, dot_kernel, bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (20, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=2)
        direct_v, direct_i = kernel.run_batch(queries)
        engine = kernel.serve(max_batch=3, max_wait=0.001)
        futures = [engine.submit(q) for q in queries]
        engine.shutdown(wait=True)  # must resolve everything first
        for row, future in enumerate(futures):
            assert future.done() and not future.cancelled()
            _v, indices = future.result(timeout=0)
            np.testing.assert_array_equal(indices[0], direct_i[row])
        with pytest.raises(SessionError, match="shut down"):
            engine.submit(queries[0])
        engine.shutdown()  # idempotent

    def test_shutdown_abort_true_delivers_cluster_shutdown(
            self, dot_kernel, bipolar_store):
        """shutdown(abort=True): still-pending futures raise the typed
        ClusterShutdown (a control-plane decision), not a bare cancel —
        so clients can tell an eviction/teardown from a lost request."""
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        engine = kernel.serve(max_batch=1, max_wait=0.0, time_scale=1e-3)
        futures = [engine.submit(q) for q in bipolar_store[:6]]
        engine.shutdown(abort=True)
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.append("served")
            except ClusterShutdown as exc:
                assert "shut down" in str(exc)
                outcomes.append("aborted")
            except CancelledError:  # pragma: no cover - the old behaviour
                outcomes.append("cancelled")
        assert "aborted" in outcomes
        assert "cancelled" not in outcomes
        served = outcomes.count("served")
        assert outcomes == ["served"] * served + \
            ["aborted"] * (6 - served)

    def test_abort_cancels_pending(self, dot_kernel, bipolar_store):
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        # Pace each micro-batch to a tens-of-ms simulated hold so queued
        # requests are still pending when the abort lands.
        engine = kernel.serve(max_batch=1, max_wait=0.0, time_scale=1e-3)
        futures = [engine.submit(q) for q in bipolar_store[:6]]
        engine.shutdown(wait=False)
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.append("served")
            except CancelledError:
                outcomes.append("cancelled")
        assert "cancelled" in outcomes
        # Served requests were served correctly, in FIFO prefix order.
        served = outcomes.count("served")
        assert outcomes == ["served"] * served + \
            ["cancelled"] * (6 - served)


# --------------------------------------------------------------------------
# Request tracing and the zero-copy dispatch path
# --------------------------------------------------------------------------
class _CapturingBackend:
    """Records exactly the array object each micro-batch handed over."""

    def __init__(self):
        self.batches = []

    def run_batch(self, queries):
        self.batches.append(queries)
        return np.array(np.atleast_2d(queries), copy=True)


class TestTracingAndZeroCopy:
    def test_trace_summary_phases(self, dot_kernel, bipolar_store, rng):
        queries = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16))
        with kernel.serve(max_batch=4, max_wait=0.001) as engine:
            for future in [engine.submit(q) for q in queries]:
                future.result(timeout=30)
            summary = engine.trace_summary()
        assert summary["requests"] == 8
        assert set(summary["phases"]) == {
            "queue", "coalesce", "run", "merge", "total"
        }
        for stats in summary["phases"].values():
            assert 0.0 <= stats["p50"] <= stats["p99"]
            assert stats["mean"] >= 0.0
        # total covers the inner phases for any single request.
        assert summary["phases"]["total"]["p99"] >= (
            summary["phases"]["run"]["p50"]
        )

    def test_single_request_batch_is_zero_copy(self):
        backend = _CapturingBackend()
        batch = np.arange(32.0).reshape(4, 8)
        with ServingEngine([backend], max_batch=8) as engine:
            result = engine.submit(batch).result(timeout=30)
            np.testing.assert_array_equal(result, batch)
            stats = engine.stats()
        assert len(backend.batches) == 1
        assert np.shares_memory(backend.batches[0], batch)
        assert stats["zero_copy_batches"] == 1
        assert stats["batches_dispatched"] == 1

    def test_row_aligned_map_coalesces_without_copy(self):
        """map() rows are consecutive views of one buffer; the
        dispatcher must stitch them back into a view of that buffer —
        and the view must carry every row, not the first row repeated
        (regression: a (1, N) row view is C-contiguous with a zero
        leading stride, which naive stride extension replicates)."""
        backend = _CapturingBackend()
        batch = np.arange(48.0).reshape(6, 8)  # float64: map() won't copy
        with ServingEngine([backend], max_batch=6, max_wait=0.5) as engine:
            futures = engine.map(batch)
            for row, future in enumerate(futures):
                values = future.result(timeout=30)
                np.testing.assert_array_equal(values[0], batch[row])
            stats = engine.stats()
        assert stats["batches_dispatched"] == 1
        (seen,) = backend.batches
        np.testing.assert_array_equal(seen, batch)
        assert np.shares_memory(seen, batch)
        assert stats["zero_copy_batches"] == 1

    def test_scattered_requests_pay_the_copy(self):
        """Requests from unrelated buffers cannot alias — the engine
        concatenates and the zero-copy counter stays put."""
        backend = _CapturingBackend()
        rows = [np.full(8, float(i)) for i in range(4)]  # separate buffers
        with ServingEngine([backend], max_batch=4, max_wait=0.5) as engine:
            futures = [engine.submit(row) for row in rows]
            for row, future in zip(rows, futures):
                values = future.result(timeout=30)
                np.testing.assert_array_equal(values[0], row)
            stats = engine.stats()
        assert stats["batches_dispatched"] == 1
        assert stats["zero_copy_batches"] == 0
        for row in rows:
            assert not np.shares_memory(backend.batches[0], row)


# --------------------------------------------------------------------------
# Concurrency soak: interleaved producers, zero cross-wiring
# --------------------------------------------------------------------------
class TestConcurrencySoak:
    N_PRODUCERS = 6
    PER_PRODUCER = 25

    def test_interleaved_producers_never_cross_wire(self, dot_kernel,
                                                    bipolar_store):
        """Each query is a stored row; its future must resolve to that
        row's index no matter how requests interleave, coalesce, or
        which replica serves them."""
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=3)
        engine = kernel.serve(max_batch=4, max_wait=0.0005)
        results = [None] * self.N_PRODUCERS
        start = threading.Barrier(self.N_PRODUCERS)

        def producer(worker: int) -> None:
            prng = np.random.default_rng(1000 + worker)
            rows = prng.integers(0, len(bipolar_store), self.PER_PRODUCER)
            start.wait()
            handles = []
            for row in rows:
                handles.append((row, engine.submit(bipolar_store[row])))
                if row % 3 == 0:
                    time.sleep(0)  # encourage interleaving
            # Resolve in a worker-specific order: future resolution must
            # not depend on result() call order.
            if worker % 2:
                handles = handles[::-1]
            results[worker] = [
                (row, future.result(timeout=60)) for row, future in handles
            ]

        threads = [
            threading.Thread(target=producer, args=(i,))
            for i in range(self.N_PRODUCERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "producer deadlocked"
        engine.shutdown()

        total = 0
        for produced in results:
            assert produced is not None
            for row, (values, indices) in produced:
                assert indices.shape == (1, 1)
                assert indices[0, 0] == row, "result cross-wired!"
                total += 1
        assert total == self.N_PRODUCERS * self.PER_PRODUCER
        stats = engine.stats()
        assert stats["requests_submitted"] == total
        assert sum(stats["rows_dispatched"]) == total
        # The deployment report saw every query exactly once.
        assert engine.report().queries == total

    def test_shutdown_races_with_producers(self, dot_kernel, bipolar_store):
        """shutdown(wait=True) concurrent with the last submissions:
        every accepted request resolves, every refused one raises."""
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=2)
        engine = kernel.serve(max_batch=2, max_wait=0.0005)
        accepted, refused = [], []

        def producer() -> None:
            for row in range(40):
                try:
                    accepted.append(
                        (row % 32, engine.submit(bipolar_store[row % 32]))
                    )
                except SessionError:
                    refused.append(row)
                time.sleep(0.0002)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.003)
        engine.shutdown(wait=True)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert accepted, "shutdown raced ahead of every submission"
        for row, future in accepted:
            assert future.done() and not future.cancelled()
            _v, indices = future.result(timeout=0)
            assert indices[0, 0] == row


# --------------------------------------------------------------------------
# Mutations interleaved with live serving
# --------------------------------------------------------------------------
class TestMutateDuringServe:
    """``ServingEngine.mutate`` against concurrent producers: mutations
    apply under the per-lane serve locks, so every request sees a whole
    store (old or new, never torn), and the barrier (the call
    returning) guarantees later requests see the mutated store."""

    N_PRODUCERS = 4
    PER_PRODUCER = 15
    PROTECTED = 24  # rows the mutator never deletes

    def _engine(self, dot_kernel, bipolar_store):
        kernel = compile_dot(dot_kernel, bipolar_store, (1, 64),
                             spec=dse_spec(16), num_replicas=2)
        return kernel.serve(max_batch=4, max_wait=0.0005)

    def test_producers_race_mutator_without_cross_wiring(
        self, dot_kernel, bipolar_store, rng
    ):
        """Producers query rows the mutator never touches while it
        churns inserts/deletes.  A self-query of a ±1 row scores the
        unique best value 0.0 (zero mismatching cells) regardless of
        what else is in the store — any torn write, cross-wired future,
        or half-applied replica shows up as a different top value."""
        engine = self._engine(dot_kernel, bipolar_store)
        errors = []
        start = threading.Barrier(self.N_PRODUCERS + 1)
        stop = threading.Event()

        def producer(worker: int) -> None:
            prng = np.random.default_rng(500 + worker)
            start.wait()
            try:
                for _ in range(self.PER_PRODUCER):
                    row = int(prng.integers(0, self.PROTECTED))
                    values, _indices = engine.submit(
                        bipolar_store[row]
                    ).result(timeout=60)
                    assert values.shape == (1, 1)
                    assert values[0, 0] == 0.0, (
                        f"self-query of row {row} lost its best score"
                    )
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        def mutator() -> None:
            mrng = np.random.default_rng(77)
            start.wait()
            try:
                doomed = list(range(self.PROTECTED, 32))
                for _ in range(10):
                    results = engine.mutate(
                        lambda b, ids=tuple(doomed): b.delete(list(ids))
                    )
                    rows = mrng.choice([-1.0, 1.0], (2, 64)).astype(
                        np.float32
                    )
                    results = engine.mutate(
                        lambda b, r=rows: b.insert(r)
                    )
                    # Replica id spaces must stay identical.
                    assert all(r == results[0] for r in results)
                    doomed = results[0]
            except Exception as exc:
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=producer, args=(i,))
            for i in range(self.N_PRODUCERS)
        ] + [threading.Thread(target=mutator)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "serve/mutate deadlocked"
        assert not errors, errors
        engine.shutdown()

    def test_no_stale_reads_after_mutation_barrier(
        self, dot_kernel, bipolar_store, rng
    ):
        """Once ``mutate`` returns, every subsequent request must see
        the new store — a probe pattern inserted through the barrier is
        immediately its own best match on whichever replica serves."""
        engine = self._engine(dot_kernel, bipolar_store)
        probe = rng.choice([-1.0, 1.0], 64).astype(np.float32)
        values, _ = engine.submit(probe).result(timeout=60)
        assert values[0, 0] > 0.0, "probe accidentally equals a stored row"
        engine.mutate(lambda backend: backend.insert(probe))
        # Hit every replica: each request must see the inserted probe.
        for _ in range(8):
            values, _ = engine.submit(probe).result(timeout=60)
            assert values[0, 0] == 0.0, "stale read after mutation barrier"
        engine.shutdown()

    def test_shutdown_abort_with_mutations_pending(
        self, dot_kernel, bipolar_store, rng
    ):
        """shutdown(abort=True) while a mutator thread is mid-churn:
        everything terminates cleanly — pending futures resolve or
        raise the typed shutdown error, the mutator either completes or
        gets a clean SessionError, nothing deadlocks."""
        engine = self._engine(dot_kernel, bipolar_store)
        futures = [
            engine.submit(bipolar_store[i % 32]) for i in range(12)
        ]
        outcome = []

        def mutator() -> None:
            mrng = np.random.default_rng(11)
            try:
                for _ in range(50):
                    rows = mrng.choice([-1.0, 1.0], (1, 64)).astype(
                        np.float32
                    )
                    engine.mutate(lambda b, r=rows: b.insert(r))
                outcome.append("completed")
            except SessionError:
                outcome.append("refused")

        thread = threading.Thread(target=mutator)
        thread.start()
        time.sleep(0.002)
        engine.shutdown(abort=True)
        thread.join(timeout=60)
        assert not thread.is_alive(), "mutator deadlocked across shutdown"
        assert outcome in (["completed"], ["refused"])
        for future in futures:
            assert future.done()
            if not future.cancelled():
                try:
                    values, _ = future.result(timeout=0)
                except ClusterShutdown:
                    continue
                assert values.shape == (1, 1)
        engine.shutdown(abort=True)  # idempotent


# --------------------------------------------------------------------------
# Concurrent-report merging
# --------------------------------------------------------------------------
class TestMergeConcurrentReports:
    def test_requires_reports(self):
        with pytest.raises(ValueError):
            merge_concurrent_reports([])

    def test_latency_maxes_queries_sum(self):
        a = ExecutionReport(query_latency_ns=100.0, queries=10)
        b = ExecutionReport(query_latency_ns=60.0, queries=10)
        merged = merge_concurrent_reports([a, b])
        assert merged.query_latency_ns == 100.0
        assert merged.queries == 20
        assert merged.throughput_qps == pytest.approx(20 / 100e-9)

    def test_mismatched_specs_rejected(self):
        a = ExecutionReport(queries=1, spec=dse_spec(16))
        b = ExecutionReport(queries=1, spec=paper_spec(rows=64, cols=64))
        with pytest.raises(ValueError, match="ArchSpec"):
            merge_concurrent_reports([a, b])


class TestZeroQueryReports:
    """Zero-query tenant reports (admitted, never queried) must flow
    through every combiner without dividing by zero — the regression
    surface of the cluster's dynamic-membership accounting."""

    @staticmethod
    def _idle_lane():
        """An idle tenant lane: programming cost, silicon, no traffic."""
        return ExecutionReport(
            setup_latency_ns=120.0,
            energy=EnergyBreakdown(write=500.0),
            banks_used=1, mats_used=4, arrays_used=16, subarrays_used=32,
            queries=0,
        )

    @staticmethod
    def _busy_lane():
        return ExecutionReport(
            query_latency_ns=200.0,
            setup_latency_ns=80.0,
            energy=EnergyBreakdown(search=40.0, write=300.0),
            banks_used=1, mats_used=4, arrays_used=16, subarrays_used=32,
            searches=64, queries=10,
        )

    def test_idle_report_helpers_guarded(self):
        idle = self._idle_lane()
        assert idle.throughput_qps == 0.0
        assert idle.per_query_latency_ns == 0.0
        assert idle.per_query_energy_pj == 0.0
        assert idle.power_mw == 0.0
        assert idle.edp == 0.0

    def test_serial_combination_with_idle_tenant(self):
        combined = combine_serial_reports([self._busy_lane(),
                                           self._idle_lane()])
        assert combined.queries == 10
        assert combined.query_latency_ns == 200.0
        assert combined.throughput_qps == pytest.approx(10 / 200e-9)
        assert combined.energy.write == 800.0
        # The all-idle machine stays finite everywhere.
        idle_only = combine_serial_reports([self._idle_lane(),
                                            self._idle_lane()])
        assert idle_only.throughput_qps == 0.0
        assert idle_only.per_query_latency_ns == 0.0
        assert idle_only.power_mw == 0.0

    def test_concurrent_merge_with_idle_lane(self):
        merged = merge_concurrent_reports([self._busy_lane(),
                                           self._idle_lane()])
        assert merged.queries == 10
        assert merged.throughput_qps == pytest.approx(10 / 200e-9)
        idle_only = merge_concurrent_reports([self._idle_lane()])
        assert idle_only.throughput_qps == 0.0
        assert idle_only.per_query_energy_pj == 0.0

    def test_epoch_combination_with_zero_query_epoch(self):
        """An admit-then-evict epoch (zero queries) sums with a busy
        one: time and writes add, allocation takes the peak, and no
        per-query figure divides by zero."""
        combined = combine_epoch_reports([self._idle_lane(),
                                          self._busy_lane()])
        assert combined.queries == 10
        assert combined.query_latency_ns == 200.0
        assert combined.setup_latency_ns == 200.0  # both epochs program
        assert combined.energy.write == 800.0
        assert combined.banks_used == 1  # peak, not sum: same fabric
        assert combined.throughput_qps == pytest.approx(10 / 200e-9)
        idle_only = combine_epoch_reports([self._idle_lane()])
        assert idle_only.throughput_qps == 0.0
        with pytest.raises(ValueError):
            combine_epoch_reports([])

    def test_epoch_combination_rejects_mixed_specs(self):
        a = ExecutionReport(queries=1, spec=dse_spec(16))
        b = ExecutionReport(queries=1, spec=paper_spec(rows=64, cols=64))
        with pytest.raises(ValueError, match="ArchSpec"):
            combine_epoch_reports([a, b])
