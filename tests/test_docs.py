"""Docs-sanity check: every fenced ``python`` block must execute.

Extracts the fenced code blocks from the root ``README.md`` and every
``docs/*.md`` page and ``exec``\\ s each one in a fresh namespace, so
documented examples cannot rot as the API moves.  Blocks run in file
order but independently (no shared state); a block that raises fails
the suite with its file and position in the test id.
"""

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files whose python blocks are executed.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    params = []
    for path in DOC_FILES:
        if not path.exists():
            continue
        for i, match in enumerate(_FENCE.finditer(path.read_text()), 1):
            rel = path.relative_to(REPO_ROOT)
            params.append(
                pytest.param(match.group(1), id=f"{rel}#block{i}")
            )
    return params


def test_docs_exist():
    """The documented entry points of this repo must be present."""
    for name in ("README.md", "docs/architecture.md",
                 "docs/execution-model.md", "docs/performance.md"):
        assert (REPO_ROOT / name).exists(), f"missing {name}"


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_docs_links_resolve():
    """Relative links in README.md and docs/*.md must point at files
    that exist (external URLs, anchors and GitHub-web-relative paths
    like the CI badge are skipped)."""
    broken = []
    for path in DOC_FILES:
        for target in _LINK.findall(path.read_text()):
            if "://" in target or target.startswith(("#", "mailto:")):
                continue
            resolved = (path.parent / target.split("#")[0]).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                continue  # GitHub-web-relative (e.g. the badge link)
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "dead links:\n" + "\n".join(broken)


def test_docs_have_executable_examples():
    assert len(_blocks()) >= 3


@pytest.mark.parametrize("source", _blocks())
def test_doc_block_executes(source, capsys):
    # Docs assume the repo layout (PYTHONPATH=src); mirror it so the
    # check also passes when pytest is launched some other way.
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    namespace = {"__name__": "__doc_example__"}
    exec(compile(source, "<doc block>", "exec"), namespace)
