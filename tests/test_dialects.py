"""Construction and verification tests for all dialect operations."""

import pytest

from repro.dialects import arith as arith_d
from repro.dialects import cam as cam_d
from repro.dialects import cim as cim_d
from repro.dialects import func as func_d
from repro.dialects import memref as memref_d
from repro.dialects import scf as scf_d
from repro.dialects import tensor as tensor_d
from repro.dialects import torch as torch_d
from repro.ir.builder import OpBuilder
from repro.ir.types import (
    CamIdType,
    FunctionType,
    MemRefType,
    TensorType,
    f32,
    i64,
    index,
)


def idx(v):
    return arith_d.ConstantOp(v, index).result


class TestArith:
    def test_constant_types(self):
        assert arith_d.ConstantOp(3).result.type == index
        assert arith_d.ConstantOp(1.5).result.type == f32
        assert arith_d.ConstantOp(3, i64).result.type == i64

    def test_constant_bad_type(self):
        with pytest.raises(ValueError):
            arith_d.ConstantOp(1, TensorType([2], f32))

    def test_binary_type_mismatch(self):
        a = arith_d.ConstantOp(1).result
        b = arith_d.ConstantOp(1, i64).result
        with pytest.raises(ValueError):
            arith_d.AddIOp(a, b)

    def test_cmpi_predicates(self):
        a, b = idx(1), idx(2)
        op = arith_d.CmpIOp("slt", a, b)
        assert op.predicate == "slt"
        with pytest.raises(ValueError):
            arith_d.CmpIOp("weird", a, b)

    def test_select_branch_types(self):
        c = arith_d.CmpIOp("eq", idx(1), idx(1)).result
        with pytest.raises(ValueError):
            arith_d.SelectOp(c, idx(1), arith_d.ConstantOp(1, i64).result)


class TestTensorMemref:
    def test_extract_slice_type(self):
        src = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        op = tensor_d.ExtractSliceOp(src, [0, 32], [10, 32])
        assert op.result.type == TensorType([10, 32], f32)
        assert op.offsets == [0, 32]
        assert op.sizes == [10, 32]
        assert op.strides == [1, 1]

    def test_extract_slice_requires_tensor(self):
        buf = memref_d.AllocOp(MemRefType([4], f32)).result
        with pytest.raises(ValueError):
            tensor_d.ExtractSliceOp(buf, [0], [2])

    def test_insert_slice(self):
        src = tensor_d.EmptyOp(TensorType([2, 4], f32)).result
        dst = tensor_d.EmptyOp(TensorType([10, 4], f32)).result
        op = tensor_d.InsertSliceOp(src, dst, [4, 0])
        assert op.result.type == dst.type

    def test_alloc_requires_memref(self):
        with pytest.raises(ValueError):
            memref_d.AllocOp(TensorType([4], f32))

    def test_subview_type(self):
        buf = memref_d.AllocOp(MemRefType([10, 64], f32)).result
        op = memref_d.SubviewOp(buf, [0, -1], [1, 32], offset_operands=[idx(8)])
        assert op.result.type == MemRefType([1, 32], f32)

    def test_to_memref_to_tensor(self):
        t = tensor_d.EmptyOp(TensorType([3, 4], f32)).result
        buf = memref_d.ToMemrefOp(t).result
        assert buf.type == MemRefType([3, 4], f32)
        back = memref_d.ToTensorOp(buf)
        assert back.result.type == TensorType([3, 4], f32)

    def test_to_tensor_reshape(self):
        buf = memref_d.AllocOp(MemRefType([1, 4], f32)).result
        op = memref_d.ToTensorOp(buf, TensorType([4], f32))
        assert op.result.type == TensorType([4], f32)

    def test_to_tensor_reshape_count_mismatch(self):
        buf = memref_d.AllocOp(MemRefType([1, 4], f32)).result
        with pytest.raises(ValueError):
            memref_d.ToTensorOp(buf, TensorType([5], f32))

    def test_fill(self):
        buf = memref_d.AllocOp(MemRefType([4], f32)).result
        op = memref_d.FillOp(buf, 2.0)
        assert op.value == 2.0


class TestScf:
    def test_for_structure(self):
        loop = scf_d.ForOp(idx(0), idx(8), idx(1))
        assert loop.induction_var.type == index
        assert len(loop.body.arguments) == 1
        assert loop.num_results == 0

    def test_for_iter_args(self):
        init = arith_d.ConstantOp(0.0).result
        loop = scf_d.ForOp(idx(0), idx(8), idx(1), [init])
        assert len(loop.body.arguments) == 2
        assert loop.results[0].type == f32
        assert list(loop.init_values) == [init]

    def test_for_verify_bad_bounds(self):
        bad = arith_d.ConstantOp(1.0).result
        loop = scf_d.ForOp(idx(0), idx(4), idx(1))
        loop.set_operand(1, bad)
        with pytest.raises(ValueError):
            loop.verify()

    def test_parallel_structure(self):
        loop = scf_d.ParallelOp(idx(0), idx(8), idx(2))
        assert loop.step is loop.operands[2]
        assert loop.body.arguments[0] is loop.induction_var

    def test_if_blocks(self):
        c = arith_d.CmpIOp("eq", idx(0), idx(0)).result
        op = scf_d.IfOp(c)
        assert op.then_block is not op.else_block


class TestTorchDialect:
    def test_transpose_shape(self):
        t = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        op = torch_d.TransposeIntOp(t, -2, -1)
        assert op.result.type == TensorType([64, 10], f32)

    def test_matmul_shapes(self):
        a = tensor_d.EmptyOp(TensorType([4, 8], f32)).result
        b = tensor_d.EmptyOp(TensorType([8, 3], f32)).result
        assert torch_d.MmOp(a, b).result.type == TensorType([4, 3], f32)

    def test_matmul_mismatch(self):
        a = tensor_d.EmptyOp(TensorType([4, 8], f32)).result
        with pytest.raises(ValueError):
            torch_d.MmOp(a, a)

    def test_sub_broadcast(self):
        a = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        b = tensor_d.EmptyOp(TensorType([64], f32)).result
        assert torch_d.SubOp(b, a).result.type == TensorType([10, 64], f32)

    def test_broadcast_error(self):
        a = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        b = tensor_d.EmptyOp(TensorType([32], f32)).result
        with pytest.raises(ValueError):
            torch_d.SubOp(a, b)

    def test_norm_shapes(self):
        a = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        assert torch_d.NormOp(a, dim=-1).result.type == TensorType([10], f32)
        assert torch_d.NormOp(a, dim=-1, keepdim=True).result.type == \
            TensorType([10, 1], f32)

    def test_topk_results(self):
        a = tensor_d.EmptyOp(TensorType([4, 10], f32)).result
        k = torch_d.ConstantIntOp(3).result
        op = torch_d.TopkOp(a, k, 3, largest=False)
        assert op.results[0].type == TensorType([4, 3], f32)
        assert op.results[1].type == TensorType([4, 3], i64)
        assert op.k == 3 and op.largest is False


class TestCimDialect:
    def test_execute_structure(self):
        dev = cim_d.AcquireOp().result
        t = tensor_d.EmptyOp(TensorType([4, 8], f32)).result
        ex = cim_d.ExecuteOp(dev, [t], [TensorType([8, 4], f32)])
        assert len(ex.body.arguments) == 1
        body = OpBuilder.at_end(ex.body)
        tr = body.create(cim_d.TransposeOp, ex.body.arguments[0])
        body.create(cim_d.YieldOp, [tr.result])
        ex.verify()

    def test_execute_requires_yield(self):
        dev = cim_d.AcquireOp().result
        ex = cim_d.ExecuteOp(dev, [], [])
        with pytest.raises(ValueError):
            ex.verify()

    def test_execute_yield_type_check(self):
        dev = cim_d.AcquireOp().result
        t = tensor_d.EmptyOp(TensorType([4, 8], f32)).result
        ex = cim_d.ExecuteOp(dev, [t], [TensorType([4, 8], f32)])
        body = OpBuilder.at_end(ex.body)
        tr = body.create(cim_d.TransposeOp, ex.body.arguments[0])
        body.create(cim_d.YieldOp, [tr.result])  # wrong type: 8x4
        with pytest.raises(ValueError):
            ex.verify()

    def test_release_requires_device(self):
        t = tensor_d.EmptyOp(TensorType([4], f32)).result
        op = cim_d.ReleaseOp.__new__(cim_d.ReleaseOp)
        from repro.ir.operation import Operation

        Operation.__init__(op, name="cim.release", operands=[t])
        with pytest.raises(ValueError):
            op.verify()

    def test_similarity_metric_validation(self):
        s = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        q = tensor_d.EmptyOp(TensorType([2, 64], f32)).result
        k = torch_d.ConstantIntOp(1).result
        with pytest.raises(ValueError):
            cim_d.SimilarityOp("manhattan", s, q, k, 1)

    def test_similarity_default_largest(self):
        s = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        q = tensor_d.EmptyOp(TensorType([2, 64], f32)).result
        k = torch_d.ConstantIntOp(1).result
        assert cim_d.SimilarityOp("dot", s, q, k, 1).largest is True
        assert cim_d.SimilarityOp("euclidean", s, q, k, 1).largest is False

    def test_similarity_dim_mismatch(self):
        s = tensor_d.EmptyOp(TensorType([10, 64], f32)).result
        q = tensor_d.EmptyOp(TensorType([2, 32], f32)).result
        k = torch_d.ConstantIntOp(1).result
        op = cim_d.SimilarityOp("dot", s, q, k, 1)
        with pytest.raises(ValueError):
            op.verify()

    def test_merge_partial_direction(self):
        a = tensor_d.EmptyOp(TensorType([10], f32)).result
        with pytest.raises(ValueError):
            cim_d.MergePartialOp("similarity dot", "diagonal", a, a)


class TestCamDialect:
    def _sub_id(self):
        bank = cam_d.AllocBankOp(idx(32), idx(32)).result
        mat = cam_d.AllocMatOp(bank).result
        arr = cam_d.AllocArrayOp(mat).result
        return cam_d.AllocSubarrayOp(arr).result

    def test_alloc_chain_types(self):
        sub = self._sub_id()
        assert sub.type == CamIdType("subarray")

    def test_alloc_mat_requires_bank(self):
        mat_like = self._sub_id()
        with pytest.raises(ValueError):
            cam_d.AllocMatOp(mat_like).verify()

    def test_write_value_checks(self):
        sub = self._sub_id()
        data = memref_d.AllocOp(MemRefType([10, 32], f32)).result
        op = cam_d.WriteValueOp(sub, data, row_offset=10)
        op.verify()
        assert op.row_offset == 10
        t = tensor_d.EmptyOp(TensorType([10, 32], f32)).result
        with pytest.raises(ValueError):
            cam_d.WriteValueOp(sub, t).verify()

    def test_search_attrs(self):
        sub = self._sub_id()
        q = memref_d.AllocOp(MemRefType([1, 32], f32)).result
        op = cam_d.SearchOp(
            sub, q, search_type="best", metric="dot",
            row_begin=10, row_count=10, accumulate=True,
        )
        op.verify()
        assert op.metric == "dot" and op.accumulate is True
        assert op.row_begin == 10

    def test_search_validation(self):
        sub = self._sub_id()
        q = memref_d.AllocOp(MemRefType([1, 32], f32)).result
        with pytest.raises(ValueError):
            cam_d.SearchOp(sub, q, search_type="fuzzy")
        with pytest.raises(ValueError):
            cam_d.SearchOp(sub, q, metric="manhattan")

    def test_read_result_types(self):
        sub = self._sub_id()
        op = cam_d.ReadOp(sub, 10, f32)
        assert op.results[0].type == MemRefType([10, 1], f32)
        assert op.results[1].type == MemRefType([10, 1], i64)

    def test_merge_partial_dynamic_offset(self):
        acc = memref_d.AllocOp(MemRefType([100], f32)).result
        part = memref_d.AllocOp(MemRefType([10, 1], f32)).result
        op = cam_d.MergePartialOp(
            acc, part, level="subarray", row_offset_value=idx(20)
        )
        assert op.num_operands == 3

    def test_sync_levels(self):
        cam_d.SyncOp("array", rows=10).verify()
        with pytest.raises(ValueError):
            cam_d.SyncOp("cluster")

    def test_select_topk(self):
        scores = memref_d.AllocOp(MemRefType([10], f32)).result
        vout = memref_d.AllocOp(MemRefType([1, 3], f32)).result
        iout = memref_d.AllocOp(MemRefType([1, 3], i64)).result
        op = cam_d.SelectTopkOp(scores, 3, True, vout, iout)
        assert op.k == 3 and op.largest is True


class TestFuncDialect:
    def test_func_signature_args(self):
        t = TensorType([2], f32)
        f = func_d.FuncOp("g", FunctionType([t], [t]))
        assert [a.type for a in f.arguments] == [t]
        f.verify()

    def test_func_arg_mismatch_detected(self):
        t = TensorType([2], f32)
        f = func_d.FuncOp("g", FunctionType([t], []))
        f.body.add_argument(index)
        with pytest.raises(ValueError):
            f.verify()

    def test_call_op(self):
        op = func_d.CallOp("helper", [], [index])
        assert op.callee == "helper"
