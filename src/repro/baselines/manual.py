"""Hand-crafted CAM mapping — the validation baseline of paper Fig. 7.

This module reimplements, *independently of the compiler*, the
hand-optimized HDC mapping of Kazemi et al. [22]: it drives the simulator
machine directly with its own allocation loop and its own latency
aggregation.  The accounting deliberately follows the manual designers'
conventions rather than the compiler's generated loop nest:

* the reduction network is charged as a ``log2``-depth merge tree over
  the populated arrays (the compiler charges fixed per-level hops);
* readout of all subarrays is assumed fully overlapped except one
  pipeline drain (the compiler charges one read latency after the joins).

The small systematic differences between the two models reproduce the
validation gap of Fig. 7 ("slight differences in the versions of the
simulation environment rather than fundamental differences").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport
from repro.transforms.optimizations import cam_search_metric
from repro.transforms.partitioning import compute_partition_plan


@dataclass
class ManualResult:
    """Outcome of the hand-crafted mapping."""

    indices: np.ndarray
    values: np.ndarray
    report: ExecutionReport


def run_manual_similarity(
    stored: np.ndarray,
    queries: np.ndarray,
    spec: ArchSpec,
    tech: TechnologyModel = FEFET_45NM,
    k: int = 1,
    metric: str = "dot",
    largest: bool = True,
) -> ManualResult:
    """Execute a similarity kernel with the hand-optimized mapping."""
    stored = np.atleast_2d(np.asarray(stored, dtype=np.float64))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    patterns, features = stored.shape
    plan = compute_partition_plan(patterns, features, len(queries), spec, False)
    cam_metric, flip = cam_search_metric(metric, spec)
    sel_largest = largest if not flip else not largest

    machine = CamMachine(spec, tech)
    setup_time = 0.0

    # ---- placement: column tiles across subarrays, row-major.
    sub_ids = []
    for lin in range(plan.subarrays):
        if lin % spec.subarrays_per_bank == 0:
            bank = machine.alloc_bank()
        if lin % spec.subarrays_per_mat == 0:
            mat = machine.alloc_mat(bank)
        if lin % spec.subarrays_per_array == 0:
            array = machine.alloc_array(mat)
        sub = machine.alloc_subarray(array)
        sub_ids.append(sub)
        rp, cp = lin // plan.col_tiles, lin % plan.col_tiles
        tile = stored[
            rp * plan.row_tile : (rp + 1) * plan.row_tile,
            cp * plan.col_tile : (cp + 1) * plan.col_tile,
        ]
        setup_time += machine.write_value(sub, tile, at=setup_time)

    # ---- queries: all subarrays search in parallel; manual timing model.
    search_lat = tech.search_phase_latency(spec)
    read_lat = tech.read_latency(spec, plan.row_tile)
    merge_depth = max(1, math.ceil(math.log2(max(machine.arrays_used, 2))))
    all_values = np.empty((len(queries), k))
    all_indices = np.empty((len(queries), k), dtype=np.int64)
    t = 0.0
    for qi, q in enumerate(queries):
        machine.begin_query()
        scores = np.zeros(patterns)
        for lin, sub in enumerate(sub_ids):
            rp, cp = lin // plan.col_tiles, lin % plan.col_tiles
            machine.search(
                sub,
                q[cp * plan.col_tile : (cp + 1) * plan.col_tile],
                metric=cam_metric,
                row_count=plan.row_tile,
                at=t,
            )
            vals, _idx, _d = machine.read(sub, plan.row_tile, at=t)
            n = min(len(vals), patterns - rp * plan.row_tile)
            scores[rp * plan.row_tile : rp * plan.row_tile + n] += vals[:n]
            machine.merge("subarray", n, at=t)
        values, indices, select_lat = machine.select_topk(
            scores, k, sel_largest, at=t
        )
        all_values[qi] = values
        all_indices[qi] = indices
        # Manual latency aggregation: parallel searches, pipelined reads,
        # log-depth merge tree, host selection.
        t += (
            tech.frontend_latency(spec)
            + search_lat
            + read_lat
            + merge_depth * tech.merge_latency("array")
            + select_lat
        )
    report = machine.finish(t, setup_time)
    report.queries = len(queries)
    return ManualResult(indices=all_indices, values=all_values, report=report)
