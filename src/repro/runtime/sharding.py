"""Sharded multi-machine sessions: one stored set, N programmed machines.

A single CAM machine caps out when the stored-pattern matrix needs more
banks than the :class:`~repro.arch.spec.ArchSpec` provides.  The paper's
answer to capacity is tiling — banks/mats/subarrays inside one machine —
and this module extends the same idea *across* machines, the way
far-memory serving systems (AMU's accessibility graphs, Atlas' hybrid
data plane) scale a fast single-device path into a serving deployment:

* **row sharding** — the ``P×D`` stored matrix splits into contiguous
  row ranges, one per shard.  Each shard is an independently compiled
  and programmed machine: its own lowered module, partition plan and
  :class:`~repro.runtime.session.QuerySession`;
* **fan-out** — a query batch is broadcast to every shard and streamed
  through PR 1's vectorized ``run_batch`` on each;
* **merge** — per-shard top-k candidates (local indices shifted by the
  shard's row offset) are re-ranked by a host-side selection into the
  global top-k.

Functionally the merge is *bitwise identical* to one oversized machine:
match-line scores are row-local (a row's score never depends on other
stored rows), each shard keeps its ``min(k, rows)`` best with the same
stable lowest-index tie-break the single-machine peripheral uses
(:func:`~repro.simulator.peripherals.best_match_batch`), and candidates
are concatenated in row-offset order — so equal scores still resolve to
the lowest global row index.  The re-rank runs on the shards' full-
precision *unclamped* (float64) scores, not the float32 outputs; a
winner-take-all sensing window (``tech.wta_window``) is applied once at
the merge against the candidate-set winner — the global winner, since
every shard keeps its own best — matching the single-machine clamp.

Timing follows the deployment model: shards are separate machines, so
programming and querying proceed in parallel — batch latency is the
**max over shards** plus the host merge hop (a top-k over ``Σ min(k,
rows_i)`` candidates); setup latency is the max over shards.  Energy,
allocation counts and chip area are **summed** across shards (N machines
really do burn N machines' worth of energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import TechnologyModel
from repro.dialects import arith as arith_d
from repro.dialects import cim as cim_d
from repro.dialects import func as func_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, TensorType, f32, i64, index
from repro.passes.pass_manager import PassManager
from repro.simulator.metrics import (
    EnergyBreakdown,
    ExecutionReport,
    aggregate_reports,
)
from repro.simulator.peripherals import best_match_batch
from repro.transforms.cim_to_cam import CimToCamPass
from repro.transforms.optimizations import MappingConfig, resolve_optimization
from repro.transforms.partitioning import (
    CapacityError,
    CimPartitionPass,
    compute_partition_plan,
    machine_row_capacity,
)

from .backend import ExecutionBackend, SessionError
from .machineview import MachineGroupView
from .session import QuerySession, StoreOverflow, StoreState


# --------------------------------------------------------------- planning
def shard_sizes(patterns: int, num_shards: int) -> List[int]:
    """Balanced contiguous row counts: ``ceil`` rows first, never empty."""
    if not 1 <= num_shards <= patterns:
        raise ValueError(
            f"cannot split {patterns} stored rows into {num_shards} shards"
        )
    base, extra = divmod(patterns, num_shards)
    return [base + 1] * extra + [base] * (num_shards - extra)


def plan_shard_count(
    patterns: int,
    features: int,
    queries: int,
    spec: ArchSpec,
    use_density: bool,
    num_shards: Optional[int] = None,
) -> int:
    """Shard count for a ``patterns×features`` store on ``spec`` machines.

    ``num_shards=None`` auto-sizes: 1 when the store fits one machine,
    otherwise the smallest count whose largest shard fits.  An explicit
    ``num_shards`` is honoured as-is and validated — in particular
    ``num_shards=1`` on an overflowing store raises
    :class:`~repro.transforms.partitioning.CapacityError` (the
    no-silent-truncation guarantee).
    """

    def overflow() -> CapacityError:
        # Always report the *full* store: required_rows/available_rows
        # and the suggested minimum shard count describe the workload,
        # not whichever shard size happened to trip the check.
        return CapacityError(
            compute_partition_plan(
                patterns, features, queries, spec, use_density
            ),
            spec,
            use_density,
        )

    capacity = machine_row_capacity(spec, features, use_density)
    if num_shards is not None:
        if (
            capacity is not None
            and max(shard_sizes(patterns, num_shards)) > capacity
        ):
            raise overflow()
        return num_shards
    if capacity is None or patterns <= capacity:
        return 1
    if capacity == 0:
        # Even one-row shards overflow at this feature width; sharding
        # cannot help.
        raise overflow()
    # The largest balanced shard is ceil(patterns / count), so the
    # smallest fitting count is ceil(patterns / capacity).
    return math.ceil(patterns / capacity)


@dataclass(frozen=True)
class Shard:
    """One machine's slice of the stored set, compiled and ready.

    ``module`` is the shard's fully lowered (cam-dialect) module whose
    single parameter is ``stored`` (the ``rows×features`` row slice);
    ``program`` the query-phase structure its
    :class:`~repro.runtime.session.QuerySession` replays; ``row_offset``
    maps the shard's local pattern indices back to global rows.
    """

    module: ModuleOp
    stored: np.ndarray
    program: object  # QueryProgram
    row_offset: int

    @property
    def rows(self) -> int:
        return self.stored.shape[0]


@dataclass(frozen=True)
class ShardSet:
    """A compiled shard partition of one similarity kernel."""

    shards: Tuple[Shard, ...]
    k: int          # the kernel's global top-k
    patterns: int
    features: int
    #: Mutation metadata — the *cim-level* similarity semantics and
    #: mapping config the shards were compiled with, kept so an
    #: overflowing insert can compile a brand-new shard through the
    #: identical pipeline.  ``None`` on hand-built shard sets, which
    #: therefore cannot split on overflow.
    metric: Optional[str] = None
    sim_largest: Optional[bool] = None
    n_queries: int = 1
    config: Optional[MappingConfig] = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def row_offsets(self) -> List[int]:
        return [shard.row_offset for shard in self.shards]


def _build_shard_module(
    n_queries: int,
    rows: int,
    features: int,
    metric: str,
    k: int,
    largest: bool,
) -> ModuleOp:
    """A minimal cim-level similarity module over one row slice.

    ``forward(queries: Q×D, stored: rows×D) -> (values, indices)`` with a
    single ``cim.execute { cim.similarity }`` block — exactly the shape
    the ``cim-partition`` / ``cim-to-cam`` passes expect, so each shard
    lowers through the standard pipeline and its session measures honest
    structural timing from the loop nest.
    """
    k_eff = min(k, rows)
    query_t = TensorType([n_queries, features], f32)
    stored_t = TensorType([rows, features], f32)
    values_t = TensorType([n_queries, k_eff], f32)
    indices_t = TensorType([n_queries, k_eff], i64)

    module = ModuleOp()
    fn = func_d.FuncOp(
        "forward", FunctionType([query_t, stored_t], [values_t, indices_t])
    )
    module.append(fn)
    b = OpBuilder.at_end(fn.body)
    device = b.create(cim_d.AcquireOp).result
    k_const = b.create(arith_d.ConstantOp, k_eff, index).result
    execute = b.create(
        cim_d.ExecuteOp,
        device,
        [fn.arguments[1], fn.arguments[0], k_const],
        [values_t, indices_t],
    )
    body = OpBuilder.at_end(execute.body)
    sim = body.create(
        cim_d.SimilarityOp,
        metric,
        execute.body.arguments[0],
        execute.body.arguments[1],
        execute.body.arguments[2],
        k_static=k_eff,
        largest=largest,
    )
    body.create(cim_d.YieldOp, list(sim.results))
    b.create(cim_d.ReleaseOp, device)
    b.create(func_d.ReturnOp, list(execute.results))
    return module


def build_shard_set(
    stored: np.ndarray,
    n_queries: int,
    metric: str,
    k: int,
    largest: bool,
    spec: ArchSpec,
    config: Optional[MappingConfig] = None,
    num_shards: Optional[int] = None,
) -> ShardSet:
    """Partition ``stored`` into shards and compile each one.

    ``metric``/``largest`` are the *cim-level* similarity semantics (the
    per-shard pipeline re-applies CAM-type legalisation identically for
    every shard).  Raises
    :class:`~repro.transforms.partitioning.CapacityError` when the
    requested shard count still overflows a machine.
    """
    stored = np.atleast_2d(np.asarray(stored))
    patterns, features = stored.shape
    config = config or resolve_optimization(spec)
    count = plan_shard_count(
        patterns, features, n_queries, spec, config.use_density, num_shards
    )
    shards = []
    offset = 0
    for rows in shard_sizes(patterns, count):
        module = _build_shard_module(
            n_queries, rows, features, metric, k, largest
        )
        cam = CimToCamPass(spec, config)
        pm = PassManager()
        pm.add(CimPartitionPass(spec, use_density=config.use_density))
        pm.add(cam)
        pm.run(module)
        shards.append(
            Shard(
                module=module,
                stored=np.ascontiguousarray(stored[offset : offset + rows]),
                program=cam.programs[0],
                row_offset=offset,
            )
        )
        offset += rows
    return ShardSet(
        shards=tuple(shards), k=k, patterns=patterns, features=features,
        metric=metric, sim_largest=largest, n_queries=n_queries,
        config=config,
    )


# ---------------------------------------------------------------- sessions
class ShardedSession(ExecutionBackend, MachineGroupView):
    """N live machines serving one similarity kernel's query stream.

    Owns one :class:`~repro.runtime.session.QuerySession` per shard —
    each machine is programmed exactly once with its row slice — and
    merges per-shard top-k results into global rows on
    :meth:`run_batch`.  Device noise decorrelates per shard and per
    batch via one :class:`numpy.random.SeedSequence`, reproducible for a
    fixed seed.

    The object also acts as the *aggregate machine view* consumed by
    :func:`repro.simulator.analysis.utilization` /
    ``format_report`` — ``subarrays_used``/``subarray(i)`` span all
    shard machines and :meth:`chip_area_mm2` sums their silicon.
    """

    def __init__(
        self,
        shard_set: ShardSet,
        spec: ArchSpec,
        tech: TechnologyModel,
        func_name: str = "forward",
        noise_sigma: float = 0.0,
        noise_seed=0,
        fused: bool = True,
    ):
        if not shard_set.shards:
            raise SessionError("a sharded session needs at least one shard")
        self.shard_set = shard_set
        self.spec = spec
        self.tech = tech
        self.func_name = func_name
        self.fused = bool(fused)
        self.noise_sigma = float(noise_sigma)
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        children = self._noise_seq.spawn(len(shard_set.shards))
        self.sessions = [
            QuerySession(
                shard.module,
                spec,
                tech,
                [shard.stored],
                shard.program,
                func_name=func_name,
                noise_sigma=noise_sigma,
                noise_seed=child,
                fused=fused,
            )
            for shard, child in zip(shard_set.shards, children)
        ]
        self.k = shard_set.k
        # Post-legalisation sort direction — identical across shards by
        # construction (same spec, same pipeline).
        self.largest = shard_set.shards[0].program.largest
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0
        # ---- mutable-store directory: global id -> (shard, local id).
        # A shard that grew past its compiled row count must still
        # surface enough candidates for the global merge, so each
        # session serves the *global* k.
        for session in self.sessions:
            session.serve_k = self.k
        self._gid_map: Dict[int, Tuple[int, int]] = {}
        self._initial_gids: List[List[int]] = []
        gid = 0
        for si, shard in enumerate(shard_set.shards):
            gids = list(range(gid, gid + shard.rows))
            for local, g in enumerate(gids):
                self._gid_map[g] = (si, local)
            self._initial_gids.append(gids)
            gid += shard.rows
        self._next_gid = gid
        self.mutations = 0
        self.compactions = 0

    # ------------------------------------------------------------ topology
    #: Aggregate machine view (:class:`MachineGroupView`): counters and
    #: silicon span every shard machine.
    _group_noun = "shard set"

    @property
    def num_shards(self) -> int:
        return len(self.sessions)

    @property
    def machines(self) -> List:
        """The per-shard :class:`~repro.simulator.machine.CamMachine`\\ s."""
        return [session.machine for session in self.sessions]

    @property
    def row_offsets(self) -> List[int]:
        return self.shard_set.row_offsets

    # ------------------------------------------------------- protocol bits
    def query_width(self, tenant: Optional[str] = None) -> int:
        """The kernel's feature dimension (single-tenant backend)."""
        self._require_no_tenant(tenant)
        return self.shard_set.features

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline: shards program in parallel (setup is a
        max over machines) but every machine's write energy is paid."""
        return ExecutionReport(
            setup_latency_ns=max(
                s.setup_latency_ns for s in self.sessions
            ),
            energy=EnergyBreakdown(
                write=sum(s.setup_energy_pj for s in self.sessions)
            ),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            rows_written=sum(s.rows_written for s in self.sessions),
            queries=0,
            spec=self.spec,
        )

    def report(self) -> ExecutionReport:
        """The most recent merged batch report, or the setup baseline
        before any batch ran."""
        return self.last_report or self.setup_report()

    # ------------------------------------------------------------ lifecycle
    def clone(self, noise_seed=None) -> "ShardedSession":
        """An independent replica of the whole shard group.

        Reuses the compiled :class:`ShardSet` (per-shard modules, plans
        and programs) untouched — no recompilation — and programs one
        fresh machine per shard, exactly what a second hardware copy of
        the deployment costs.  A mutated store is replayed onto the
        fresh machines via :meth:`restore`, so the clone serves the
        *live* store, not the compile-time snapshot.  Noise decorrelates
        from the parent unless an explicit ``noise_seed`` is given.
        """
        session = ShardedSession(
            self.shard_set,
            self.spec,
            self.tech,
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=(
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            ),
            fused=self.fused,
        )
        if self.mutations or self.compactions:
            session._seed_gids(self._initial_gids)
            session.restore(self.store_state())
        return session

    def reset(self) -> None:
        """Clear query-side state on every shard; patterns survive."""
        for session in self.sessions:
            session.reset()
        self.last_report = None
        self.batches_run = 0

    # ------------------------------------------------------------ mutations
    @property
    def pattern_count(self) -> int:
        """Live stored patterns across every shard."""
        return sum(session.pattern_count for session in self.sessions)

    @property
    def rows_written(self) -> int:
        return sum(session.rows_written for session in self.sessions)

    def _require_mutable(self) -> None:
        if self.shard_set.metric is None:
            raise SessionError(
                "this shard set carries no mutation metadata (hand-built "
                "via ShardSet(...)?); rebuild it with build_shard_set() "
                "to mutate the store"
            )

    def row_ids(self) -> List[int]:
        """Global ids of the live patterns in merge rank order."""
        local_to_gid: List[Dict[int, int]] = [
            {} for _ in range(len(self.sessions))
        ]
        for gid, (si, local) in self._gid_map.items():
            local_to_gid[si][local] = gid
        out: List[int] = []
        for si, session in enumerate(self.sessions):
            out.extend(local_to_gid[si][l] for l in session.row_ids())
        return out

    def insert(
        self, patterns: Union[np.ndarray, Sequence[Sequence[float]]]
    ) -> List[int]:
        """Append patterns to the store, splitting a new shard on
        overflow.

        Rows land in the *tail* shard (its machine grows whole banks in
        place) until that machine hits its bank cap; the overflowing row
        then becomes the seed of a brand-new shard compiled through the
        standard pipeline — a shard split, not a global re-shard: no
        existing machine is re-programmed.  Returns the new global ids.
        """
        self._require_mutable()
        rows = np.asarray(patterns, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[1] != self.shard_set.features:
            raise SessionError(
                f"insert expects rows of width {self.shard_set.features}, "
                f"got array of shape {rows.shape}"
            )
        gids = [self._insert_row(row) for row in rows]
        self.mutations += 1
        return gids

    def _insert_row(
        self, row: np.ndarray, forced_gid: Optional[int] = None
    ) -> int:
        gid = self._next_gid if forced_gid is None else int(forced_gid)
        si = len(self.sessions) - 1
        appended = False
        try:
            local = self.sessions[si].insert(row)[0]
        except StoreOverflow:
            si, local = self._append_shard(row)
            appended = True
        self._next_gid = max(self._next_gid, gid + 1)
        self._gid_map[gid] = (si, local)
        if appended:
            self._initial_gids[si] = [gid]
        return gid

    def _append_shard(self, row: np.ndarray) -> Tuple[int, int]:
        """Compile and program a new single-row shard seeded with ``row``."""
        ss = self.shard_set
        config = ss.config or resolve_optimization(self.spec)
        module = _build_shard_module(
            ss.n_queries, 1, ss.features, ss.metric, ss.k, ss.sim_largest
        )
        cam = CimToCamPass(self.spec, config)
        pm = PassManager()
        pm.add(CimPartitionPass(self.spec, use_density=config.use_density))
        pm.add(cam)
        pm.run(module)
        dtype = ss.shards[0].stored.dtype
        stored = np.ascontiguousarray(row[None, :].astype(dtype))
        prev = ss.shards[-1]
        shard = Shard(
            module=module,
            stored=stored,
            program=cam.programs[0],
            row_offset=prev.row_offset + prev.rows,
        )
        self.shard_set = replace(ss, shards=ss.shards + (shard,))
        session = QuerySession(
            shard.module,
            self.spec,
            self.tech,
            [shard.stored],
            shard.program,
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=self._noise_seq.spawn(1)[0],
            fused=self.fused,
        )
        session.serve_k = self.k
        self.sessions.append(session)
        self._initial_gids.append([])
        return len(self.sessions) - 1, 0

    def delete(self, ids: Union[int, Sequence[int]]) -> None:
        """Tombstone stored patterns by global id (grouped per shard)."""
        self._require_mutable()
        if isinstance(ids, (int, np.integer)):
            ids = [int(ids)]
        ids = list(dict.fromkeys(int(i) for i in ids))
        unknown = [i for i in ids if i not in self._gid_map]
        if unknown:
            raise SessionError(f"no stored pattern with id {unknown[0]}")
        by_shard: Dict[int, List[Tuple[int, int]]] = {}
        for gid in ids:
            si, local = self._gid_map[gid]
            by_shard.setdefault(si, []).append((gid, local))
        for si, pairs in sorted(by_shard.items()):
            self.sessions[si].delete([local for _gid, local in pairs])
            for gid, _local in pairs:
                del self._gid_map[gid]
        self.mutations += 1

    def update(self, pattern_id: int, pattern: np.ndarray) -> None:
        """Rewrite one stored pattern in place on its shard."""
        self._require_mutable()
        gid = int(pattern_id)
        if gid not in self._gid_map:
            raise SessionError(f"no stored pattern with id {gid}")
        si, local = self._gid_map[gid]
        self.sessions[si].update(local, pattern)
        self.mutations += 1

    def compact(self) -> int:
        """Defragment every shard; returns total rows moved."""
        self._require_mutable()
        moved = sum(session.compact() for session in self.sessions)
        self.compactions += 1
        return moved

    def store_state(self) -> StoreState:
        """Snapshot of the live store: global ids and their rows."""
        self._require_mutable()
        rows = []
        for gid in sorted(self._gid_map):
            si, local = self._gid_map[gid]
            rows.append((gid, self.sessions[si].pattern(local)))
        return StoreState(rows=tuple(rows), next_id=self._next_gid)

    def restore(self, state: StoreState) -> None:
        """Drive the live store to ``state`` with incremental mutations.

        Same cheap-diff contract as
        :meth:`~repro.runtime.session.QuerySession.restore`: deletes,
        in-place updates and tail inserts when the target id order
        allows it, otherwise a delete-all + insert-all replay.
        """
        self._require_mutable()
        target = {
            int(i): np.asarray(row, dtype=np.float64) for i, row in state.rows
        }
        current = sorted(self._gid_map)
        doomed = [g for g in current if g not in target]
        kept = [g for g in current if g in target]
        new = sorted(g for g in target if g not in self._gid_map)
        if kept and new and min(new) < max(kept):
            doomed, kept, new = current, [], sorted(target)
        if doomed:
            self.delete(doomed)
        for gid in kept:
            si, local = self._gid_map[gid]
            if not np.array_equal(self.sessions[si].pattern(local), target[gid]):
                self.update(gid, target[gid])
        for gid in new:
            self._insert_row(target[gid], forced_gid=gid)
        if new:
            self.mutations += 1
        self._next_gid = max(self._next_gid, int(state.next_id))

    def _seed_gids(self, initial_gids: List[List[int]]) -> None:
        """Adopt a parent's per-shard initial gid assignment (clone)."""
        self._gid_map = {}
        self._initial_gids = [list(gids) for gids in initial_gids]
        top = -1
        for si, gids in enumerate(self._initial_gids):
            for local, gid in enumerate(gids):
                self._gid_map[gid] = (si, local)
                top = max(top, gid)
        self._next_gid = top + 1

    # ------------------------------------------------------------- queries
    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Fan a ``B×D`` batch out to every shard and merge the top-k.

        Returns ``[values, indices]`` (``B×k`` float32 / int64) with
        *global* row indices — bitwise identical (noise disabled) to one
        unbounded machine holding the whole stored matrix.  The merge
        re-ranks the shards' float64 candidate scores with the same
        stable tie-break as the single-machine top-k peripheral.
        """
        self._require_no_tenant(tenant)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        outputs = [session.run_batch(queries) for session in self.sessions]
        n_queries = queries.shape[0]
        # Candidates concatenate in row-offset order, so the stable
        # argsort's positional tie-break equals the global-row tie-break.
        # Offsets are the *live* pattern counts (mutations shrink and
        # grow shards independently), which reduce to the static row
        # offsets on an unmutated store.
        values = np.concatenate(
            [session.last_values for session in self.sessions], axis=1
        )
        offsets = np.concatenate(
            ([0], np.cumsum([s.pattern_count for s in self.sessions])[:-1])
        )
        indices = np.concatenate(
            [
                output[1].astype(np.int64) + int(offset)
                for output, offset in zip(outputs, offsets)
            ],
            axis=1,
        )
        # Candidates are *unclamped* shard scores; ranking matches the
        # raw-score argsort a single machine performs, and the WTA
        # clamp (when the tech models one) applies once here — the
        # candidate-set winner is the global winner, since every shard
        # keeps its own best.
        k = min(self.k, values.shape[1])
        selection, top_values = best_match_batch(
            values, k, prefers_larger=self.largest,
            wta_window=self.tech.wta_window,
        )
        top_indices = np.take_along_axis(indices, selection, axis=1)
        n_candidates = values.shape[1]
        merge_latency = n_queries * self.tech.host_topk_latency(n_candidates)
        merge_energy = n_queries * self.tech.host_topk_energy(n_candidates)
        self.last_report = aggregate_reports(
            [session.last_report for session in self.sessions],
            merge_latency_ns=merge_latency,
            merge_energy_pj=merge_energy,
            queries=n_queries,
        )
        self.batches_run += 1
        return [
            top_values.astype(np.float32),
            top_indices.astype(np.int64),
        ]
