"""Executor tests: op semantics and the structural timing model."""

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.dialects import arith as arith_d
from repro.dialects import cam as cam_d
from repro.dialects import func as func_d
from repro.dialects import memref as memref_d
from repro.dialects import scf as scf_d
from repro.dialects import tensor as tensor_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, MemRefType, TensorType, f32, index
from repro.runtime.executor import ExecutionError, Interpreter
from repro.simulator.machine import CamMachine


def build(in_types, out_types):
    m = ModuleOp()
    f = func_d.FuncOp("main", FunctionType(in_types, out_types))
    m.append(f)
    return m, f, OpBuilder.at_end(f.body)


def run(m, inputs=(), machine=None):
    return Interpreter(m, machine).run_function("main", list(inputs))


class TestArithScf:
    def test_constant_and_add(self):
        m, f, b = build([], [index])
        c1 = b.create(arith_d.ConstantOp, 2)
        c2 = b.create(arith_d.ConstantOp, 3)
        s = b.create(arith_d.AddIOp, c1.result, c2.result)
        b.create(func_d.ReturnOp, [s.result])
        out, _ = run(m)
        assert out[0] == 5

    def test_div_rem_min(self):
        m, f, b = build([], [index, index, index])
        c7 = b.create(arith_d.ConstantOp, 7)
        c2 = b.create(arith_d.ConstantOp, 2)
        d = b.create(arith_d.DivSIOp, c7.result, c2.result)
        r = b.create(arith_d.RemSIOp, c7.result, c2.result)
        mn = b.create(arith_d.MinSIOp, c7.result, c2.result)
        b.create(func_d.ReturnOp, [d.result, r.result, mn.result])
        out, _ = run(m)
        assert [int(x) for x in out] == [3, 1, 2]

    def test_cmpi_select(self):
        m, f, b = build([], [index])
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        cond = b.create(arith_d.CmpIOp, "slt", c1.result, c2.result)
        sel = b.create(arith_d.SelectOp, cond.result, c1.result, c2.result)
        b.create(func_d.ReturnOp, [sel.result])
        out, _ = run(m)
        assert out[0] == 1

    def test_for_loop_iter_args(self):
        """Sum 0..9 via loop-carried value."""
        m, f, b = build([], [index])
        c0 = b.create(arith_d.ConstantOp, 0)
        c10 = b.create(arith_d.ConstantOp, 10)
        c1 = b.create(arith_d.ConstantOp, 1)
        loop = b.create(scf_d.ForOp, c0.result, c10.result, c1.result,
                        [c0.result])
        lb = OpBuilder.at_end(loop.body)
        nxt = lb.create(arith_d.AddIOp, loop.iter_args[0], loop.induction_var)
        lb.create(scf_d.YieldOp, [nxt.result])
        b.create(func_d.ReturnOp, [loop.results[0]])
        out, _ = run(m)
        assert out[0] == 45

    def test_if_branches(self):
        m, f, b = build([], [])
        buf = b.create(memref_d.AllocOp, MemRefType([1], f32))
        c0 = b.create(arith_d.ConstantOp, 0)
        c1 = b.create(arith_d.ConstantOp, 1)
        cond = b.create(arith_d.CmpIOp, "eq", c0.result, c1.result)
        if_op = b.create(scf_d.IfOp, cond.result)
        OpBuilder.at_end(if_op.then_block).create(
            memref_d.FillOp, buf.result, 5.0
        )
        OpBuilder.at_end(if_op.else_block).create(
            memref_d.FillOp, buf.result, 7.0
        )
        b.create(func_d.ReturnOp, [])
        ip = Interpreter(m)
        ip.run_function("main", [])
        # cond is false -> else branch -> 7.0 (verified via memory effects
        # below in the memref tests; here we just check it doesn't crash)

    def test_unsupported_op_raises(self):
        from repro.ir.operation import Operation

        m, f, b = build([], [])
        b.insert(Operation("mystery.op"))
        b.create(func_d.ReturnOp, [])
        with pytest.raises(ExecutionError, match="mystery"):
            run(m)


class TestMemrefTensor:
    def test_alloc_fill_store_load(self):
        m, f, b = build([], [f32])
        buf = b.create(memref_d.AllocOp, MemRefType([4], f32))
        b.create(memref_d.FillOp, buf.result, 2.5)
        c1 = b.create(arith_d.ConstantOp, 1)
        ld = b.create(memref_d.LoadOp, buf.result, [c1.result])
        b.create(func_d.ReturnOp, [ld.result])
        out, _ = run(m)
        assert out[0] == 2.5

    def test_subview_aliases(self):
        m, f, b = build([], [f32])
        buf = b.create(memref_d.AllocOp, MemRefType([4, 4], f32))
        sub = b.create(memref_d.SubviewOp, buf.result, [2, 0], [1, 4])
        b.create(memref_d.FillOp, sub.result, 9.0)
        c2 = b.create(arith_d.ConstantOp, 2)
        c0 = b.create(arith_d.ConstantOp, 0)
        ld = b.create(memref_d.LoadOp, buf.result, [c2.result, c0.result])
        b.create(func_d.ReturnOp, [ld.result])
        out, _ = run(m)
        assert out[0] == 9.0

    def test_subview_dynamic_offset(self):
        m, f, b = build([], [f32])
        buf = b.create(memref_d.AllocOp, MemRefType([8], f32))
        b.create(memref_d.FillOp, buf.result, 1.0)
        c3 = b.create(arith_d.ConstantOp, 3)
        sub = b.create(
            memref_d.SubviewOp, buf.result, [-1], [2], offset_operands=[c3.result]
        )
        b.create(memref_d.FillOp, sub.result, 4.0)
        ld = b.create(memref_d.LoadOp, buf.result, [c3.result])
        b.create(func_d.ReturnOp, [ld.result])
        out, _ = run(m)
        assert out[0] == 4.0

    def test_tensor_roundtrip(self):
        t = TensorType([2, 3], f32)
        m, f, b = build([t], [t])
        buf = b.create(memref_d.ToMemrefOp, f.arguments[0])
        back = b.create(memref_d.ToTensorOp, buf.result)
        b.create(func_d.ReturnOp, [back.result])
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        out, _ = run(m, [x])
        np.testing.assert_array_equal(out[0], x)

    def test_extract_slice_copies(self):
        t = TensorType([4, 4], f32)
        m, f, b = build([t], [TensorType([2, 2], f32)])
        sl = b.create(tensor_d.ExtractSliceOp, f.arguments[0], [1, 1], [2, 2])
        b.create(func_d.ReturnOp, [sl.result])
        x = np.arange(16, dtype=np.float32).reshape(4, 4)
        out, _ = run(m, [x])
        np.testing.assert_array_equal(out[0], x[1:3, 1:3])

    def test_input_shape_checked(self):
        t = TensorType([2, 3], f32)
        m, f, b = build([t], [])
        b.create(func_d.ReturnOp, [])
        with pytest.raises(ExecutionError, match="shape"):
            run(m, [np.zeros((3, 2), dtype=np.float32)])


class TestTimingModel:
    """The structural clock: scf.for accumulates, scf.parallel overlaps."""

    def _loop_with_searches(self, parallel: bool, n: int = 4):
        spec = paper_spec()
        m, f, b = build([], [])
        machine = CamMachine(spec)
        bank = b.create(cam_d.AllocBankOp,
                        b.create(arith_d.ConstantOp, 32).result,
                        b.create(arith_d.ConstantOp, 32).result)
        mat = b.create(cam_d.AllocMatOp, bank.result)
        arr = b.create(cam_d.AllocArrayOp, mat.result)
        subs = []
        qbuf = b.create(memref_d.AllocOp, MemRefType([1, 32], f32))
        for _ in range(n):
            s = b.create(cam_d.AllocSubarrayOp, arr.result)
            dbuf = b.create(memref_d.AllocOp, MemRefType([4, 32], f32))
            b.create(cam_d.WriteValueOp, s.result, dbuf.result)
            subs.append(s)
        c0 = b.create(arith_d.ConstantOp, 0)
        cn = b.create(arith_d.ConstantOp, n)
        c1 = b.create(arith_d.ConstantOp, 1)
        cls = scf_d.ParallelOp if parallel else scf_d.ForOp
        loop = b.create(cls, c0.result, cn.result, c1.result)
        lb = OpBuilder.at_end(loop.body)
        ref = lb.create(cam_d.SubarrayRefOp, loop.induction_var)
        lb.create(cam_d.SearchOp, ref.result, qbuf.result)
        lb.create(scf_d.YieldOp, [])
        b.create(func_d.ReturnOp, [])
        _out, report = run(m, machine=machine)
        return report

    def test_parallel_overlaps(self):
        rep_par = self._loop_with_searches(parallel=True)
        rep_seq = self._loop_with_searches(parallel=False)
        assert rep_seq.query_latency_ns == pytest.approx(
            4 * rep_par.query_latency_ns
        )

    def test_energy_same_either_way(self):
        rep_par = self._loop_with_searches(parallel=True)
        rep_seq = self._loop_with_searches(parallel=False)
        assert rep_par.energy.search == pytest.approx(rep_seq.energy.search)

    def test_writes_on_setup_clock(self):
        spec = paper_spec()
        m, f, b = build([], [])
        machine = CamMachine(spec)
        bank = b.create(cam_d.AllocBankOp,
                        b.create(arith_d.ConstantOp, 32).result,
                        b.create(arith_d.ConstantOp, 32).result)
        arr = b.create(cam_d.AllocArrayOp,
                       b.create(cam_d.AllocMatOp, bank.result).result)
        s = b.create(cam_d.AllocSubarrayOp, arr.result)
        dbuf = b.create(memref_d.AllocOp, MemRefType([4, 32], f32))
        b.create(cam_d.WriteValueOp, s.result, dbuf.result)
        b.create(func_d.ReturnOp, [])
        _out, report = run(m, machine=machine)
        assert report.query_latency_ns == 0.0
        assert report.setup_latency_ns > 0.0
        assert report.energy.write > 0.0

    def test_query_start_charges_frontend(self):
        spec = paper_spec()
        m, f, b = build([], [])
        machine = CamMachine(spec)
        b.create(cam_d.QueryStartOp)
        b.create(func_d.ReturnOp, [])
        _out, report = run(m, machine=machine)
        assert report.query_latency_ns == pytest.approx(
            machine.frontend_latency()
        )
        assert report.queries == 1

    def test_cam_op_without_machine_raises(self):
        m, f, b = build([], [])
        b.create(cam_d.QueryStartOp)
        b.create(func_d.ReturnOp, [])
        with pytest.raises(ExecutionError, match="CamMachine"):
            run(m)

    def test_subarray_ref_bounds_checked(self):
        spec = paper_spec()
        m, f, b = build([], [])
        c5 = b.create(arith_d.ConstantOp, 5)
        b.create(cam_d.SubarrayRefOp, c5.result)
        b.create(func_d.ReturnOp, [])
        with pytest.raises(ExecutionError, match="exceeds"):
            run(m, machine=CamMachine(spec))


class TestMergeSemantics:
    def _setup(self):
        m, f, b = build([], [TensorType([8], f32)])
        machine = CamMachine(paper_spec())
        acc = b.create(memref_d.AllocOp, MemRefType([8], f32))
        part = b.create(memref_d.AllocOp, MemRefType([4, 1], f32))
        b.create(memref_d.FillOp, part.result, 2.0)
        return m, f, b, machine, acc, part

    def test_horizontal_adds(self):
        m, f, b, machine, acc, part = self._setup()
        b.create(cam_d.MergePartialOp, acc.result, part.result,
                 direction="horizontal", row_offset=0)
        b.create(cam_d.MergePartialOp, acc.result, part.result,
                 direction="horizontal", row_offset=0)
        back = b.create(memref_d.ToTensorOp, acc.result)
        b.create(func_d.ReturnOp, [back.result])
        out, _ = run(m, machine=machine)
        np.testing.assert_array_equal(out[0][:4], [4.0] * 4)

    def test_vertical_places_at_offset(self):
        m, f, b, machine, acc, part = self._setup()
        c4 = b.create(arith_d.ConstantOp, 4)
        b.create(cam_d.MergePartialOp, acc.result, part.result,
                 direction="vertical", row_offset_value=c4.result)
        back = b.create(memref_d.ToTensorOp, acc.result)
        b.create(func_d.ReturnOp, [back.result])
        out, _ = run(m, machine=machine)
        np.testing.assert_array_equal(out[0], [0, 0, 0, 0, 2, 2, 2, 2])

    def test_overflow_clamped(self):
        m, f, b, machine, acc, part = self._setup()
        c6 = b.create(arith_d.ConstantOp, 6)
        b.create(cam_d.MergePartialOp, acc.result, part.result,
                 direction="horizontal", row_offset_value=c6.result)
        back = b.create(memref_d.ToTensorOp, acc.result)
        b.create(func_d.ReturnOp, [back.result])
        out, _ = run(m, machine=machine)  # must not raise
        np.testing.assert_array_equal(out[0][6:], [2.0, 2.0])
