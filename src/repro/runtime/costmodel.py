"""Predictive placement cost model: score a packing before paying for it.

Placement so far (PR 4/5) is pure bank-count first-fit-decreasing and
the autoscaler a queue-depth threshold — both blind to *traffic*.  Two
hot tenants packed onto one machine serialize
(:func:`~repro.simulator.metrics.combine_serial_reports`: the shared
fabric serves one batch at a time), while two cold tenants on separate
machines waste silicon.  This module is the missing judgement: a
:class:`PlacementCost` model that predicts, per tenant, what a
candidate packing will *cost* — latency, energy, interference — before
any machine is programmed, so the packer
(:func:`~repro.runtime.placement.plan_placement` with
``policy="cost"``), the :class:`~repro.runtime.cluster.Cluster`
re-pack and the autotuner (:mod:`repro.runtime.autotune`) can all rank
alternatives against one yardstick.

The model is **calibrated**, not guessed.  A :class:`TenantProfile`
carries a tenant's measured per-query latency/energy (from any
:class:`~repro.simulator.metrics.ExecutionReport` the sim produced —
a probe batch, a serving lane's accumulated
:class:`~repro.runtime.backend.LaneStats`), and the composition rules
mirror the simulator's accounting exactly:

* **co-residency** — tenants of one machine serialize, so the machine's
  busy time for a traffic mix is the *sum* of the tenants' own batch
  latencies (:meth:`PlacementCost.predict_serial_latency_ns` ==
  ``combine_serial_reports``);
* **sharding** — shards answer in parallel and pay one host-side merge
  hop, so a sharded batch costs ``max(shard latencies) + B *
  host_topk_latency(candidates)``
  (:meth:`PlacementCost.predict_sharded_latency_ns` ==
  :func:`~repro.simulator.metrics.aggregate_reports` with the
  :class:`~repro.runtime.sharding.ShardedSession` hop);
* **setup amortization** — programming is charged once per session and
  amortized over the traffic it serves (the PR 1 model behind
  :attr:`ExecutionReport.throughput_qps` excluding setup), so a
  tenant's amortized setup share shrinks with its expected query count.

``tests/test_costmodel.py`` asserts these predictions against measured
sim numbers within tolerance across acam/tcam presets and
single/co-resident/sharded tenants.

On top of the calibrated composition sits the *scheduling* estimate:
given per-tenant :class:`TrafficHint` s (arrival rate, batch rows,
priority, deadline), a machine's offered load is ``sum(rate *
request_latency)`` and a tenant's predicted response inflates its own
service time by the co-residents' load with an M/G/1-flavoured
congestion factor — deterministic, monotone in foreign load, and
diverging as the machine saturates.  :meth:`PlacementCost.score`
reduces a whole packing to one comparable total (rate- and
priority-weighted response plus an optional energy term, with deadline
violations surfaced and penalized), which is the objective the cost
packer's local search and the autotuner both minimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.simulator.metrics import ExecutionReport

__all__ = [
    "CostBreakdown",
    "PlacementCost",
    "TenantProfile",
    "TrafficHint",
    "profiles_from_reports",
]


# ---------------------------------------------------------------- profiles
@dataclass(frozen=True)
class TenantProfile:
    """One tenant's measured unit costs, the model's calibration input.

    ``per_query_latency_ns`` / ``per_query_energy_pj`` are the tenant's
    *own* marginal costs (its batches running alone on its banks — which
    colocation does not change: match-line scores are row-local, the
    fabric just serializes whole batches).  ``setup_latency_ns`` /
    ``setup_energy_pj`` are the one-time programming charge the
    amortization model spreads over the tenant's traffic.  ``banks`` is
    the placement footprint, ``queries_observed`` how much traffic the
    calibration saw (0 = structural estimate, no measurement).
    """

    tenant_id: str
    per_query_latency_ns: float
    per_query_energy_pj: float = 0.0
    setup_latency_ns: float = 0.0
    setup_energy_pj: float = 0.0
    banks: int = 1
    queries_observed: int = 0

    @classmethod
    def from_report(
        cls,
        tenant_id: str,
        report: ExecutionReport,
        banks: Optional[int] = None,
    ) -> "TenantProfile":
        """Calibrate a profile from any measured sim report (a probe
        batch's ``last_report``, a lane's accumulated report)."""
        return cls(
            tenant_id=tenant_id,
            per_query_latency_ns=report.per_query_latency_ns,
            per_query_energy_pj=report.per_query_energy_pj,
            setup_latency_ns=report.setup_latency_ns,
            setup_energy_pj=report.energy.write,
            banks=banks if banks is not None else max(1, report.banks_used),
            queries_observed=report.queries,
        )


def profiles_from_reports(
    reports: Mapping[str, ExecutionReport],
    banks: Optional[Mapping[str, int]] = None,
) -> Dict[str, TenantProfile]:
    """Per-tenant profiles from per-tenant measured reports."""
    return {
        tid: TenantProfile.from_report(
            tid, report, banks=None if banks is None else banks.get(tid)
        )
        for tid, report in reports.items()
    }


@dataclass(frozen=True)
class TrafficHint:
    """One tenant's offered traffic, the scheduling input.

    ``rate_qps`` is the arrival rate in requests per second of *sim*
    time (only ratios matter for ranking placements, so any consistent
    unit works — the cluster feeds observed per-epoch query counts),
    ``batch_rows`` the typical rows per request, ``priority`` the
    dispatch class weight (higher = more urgent), ``deadline_s`` an
    optional per-request latency SLO in seconds of sim time.
    """

    tenant_id: str
    rate_qps: float = 1.0
    batch_rows: int = 1
    priority: int = 0
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.rate_qps < 0:
            raise ValueError("rate_qps must be >= 0")
        if self.batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")


# -------------------------------------------------------------- breakdown
@dataclass(frozen=True)
class CostBreakdown:
    """What a candidate packing is predicted to cost, per tenant.

    ``total`` is the single comparable objective (lower is better);
    the per-tenant maps explain it: predicted response latency per
    request, interference share of that response (the part co-residents
    add), predicted energy per request, and the per-machine offered
    load / utilization behind the congestion estimate.
    ``slo_violations`` names tenants whose predicted response exceeds
    their hinted deadline — the packer and the autotuner treat those as
    heavily penalized, not silently acceptable.
    """

    total: float
    latency_ns: Dict[str, float] = field(default_factory=dict)
    interference_ns: Dict[str, float] = field(default_factory=dict)
    energy_pj: Dict[str, float] = field(default_factory=dict)
    machine_load_ns: Tuple[float, ...] = ()
    utilization: Tuple[float, ...] = ()
    slo_violations: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [f"predicted cost {self.total:.3f} "
                 f"({len(self.machine_load_ns)} machine(s))"]
        for index, (load, rho) in enumerate(
            zip(self.machine_load_ns, self.utilization)
        ):
            lines.append(
                f"  machine {index}: load {load:.0f} ns/s "
                f"(utilization {rho:.3f})"
            )
        for tid in sorted(self.latency_ns):
            extra = ""
            if tid in self.slo_violations:
                extra = "  ** SLO VIOLATION **"
            lines.append(
                f"  {tid!r}: response {self.latency_ns[tid]:.1f} ns "
                f"(+{self.interference_ns[tid]:.1f} ns interference), "
                f"{self.energy_pj[tid]:.1f} pJ/request{extra}"
            )
        return "\n".join(lines)


# -------------------------------------------------------------- the model
class PlacementCost:
    """Predicted latency/energy/interference of candidate packings.

    ``profiles`` carries the calibrated per-tenant unit costs,
    ``hints`` the offered traffic (tenants without a hint default to a
    neutral 1-request/s single-row stream, so the model still ranks
    packings when only some tenants have traffic).  ``energy_weight``
    folds predicted energy into :meth:`score`'s total (0 = latency
    only); ``amortize_window_s`` is the traffic horizon setup charges
    amortize over; ``saturation_floor`` bounds the congestion factor's
    denominator so an overloaded machine scores terribly instead of
    dividing by zero.
    """

    #: Penalty multiplier applied to a tenant's weighted response when
    #: its predicted response misses its hinted deadline.
    slo_penalty = 1e3

    def __init__(
        self,
        profiles: Mapping[str, TenantProfile] | Iterable[TenantProfile],
        hints: Optional[
            Mapping[str, TrafficHint] | Iterable[TrafficHint]
        ] = None,
        tech: TechnologyModel = FEFET_45NM,
        energy_weight: float = 0.0,
        amortize_window_s: float = 1.0,
        saturation_floor: float = 0.05,
    ):
        if not isinstance(profiles, Mapping):
            profiles = {p.tenant_id: p for p in profiles}
        self.profiles: Dict[str, TenantProfile] = dict(profiles)
        if not self.profiles:
            raise ValueError("PlacementCost needs at least one profile")
        if hints is None:
            hints = {}
        elif not isinstance(hints, Mapping):
            hints = {h.tenant_id: h for h in hints}
        unknown = set(hints) - set(self.profiles)
        if unknown:
            raise ValueError(
                f"traffic hints name unprofiled tenants: {sorted(unknown)}"
            )
        self.hints: Dict[str, TrafficHint] = dict(hints)
        self.tech = tech
        self.energy_weight = float(energy_weight)
        self.amortize_window_s = float(amortize_window_s)
        self.saturation_floor = float(saturation_floor)

    # ------------------------------------------------------------- lookups
    def profile(self, tenant_id: str) -> TenantProfile:
        try:
            return self.profiles[tenant_id]
        except KeyError:
            raise KeyError(
                f"no profile for tenant {tenant_id!r}; profiled: "
                f"{sorted(self.profiles)}"
            ) from None

    def hint(self, tenant_id: str) -> TrafficHint:
        """The tenant's traffic hint (neutral default when absent)."""
        hint = self.hints.get(tenant_id)
        return hint if hint is not None else TrafficHint(tenant_id)

    @property
    def has_traffic(self) -> bool:
        """Whether any real traffic signal exists (the cost packer's
        precondition; without one FFD is the honest choice)."""
        return any(h.rate_qps > 0 for h in self.hints.values())

    # ------------------------------------------- calibrated composition
    def predict_query_latency_ns(
        self, tenant_id: str, queries: int = 1
    ) -> float:
        """A tenant's own batch latency for ``queries`` rows (solo)."""
        return queries * self.profile(tenant_id).per_query_latency_ns

    def predict_serial_latency_ns(
        self, served: Mapping[str, int]
    ) -> float:
        """One machine's busy time serving ``{tenant: queries}``.

        Co-resident tenants time-multiplex the fabric, so the machine
        is busy for the *sum* of their batch latencies — exactly
        :func:`~repro.simulator.metrics.combine_serial_reports`.
        """
        return sum(
            self.predict_query_latency_ns(tid, queries)
            for tid, queries in served.items()
        )

    def predict_energy_pj(self, tenant_id: str, queries: int = 1) -> float:
        """A tenant's dynamic query energy for ``queries`` rows."""
        return queries * self.profile(tenant_id).per_query_energy_pj

    def predict_sharded_latency_ns(
        self,
        shard_latencies_ns: Sequence[float],
        queries: int = 1,
        candidates: int = 1,
    ) -> float:
        """A sharded batch: parallel shards plus the host merge hop.

        ``shard_latencies_ns`` are the per-shard batch latencies for
        this batch size, ``candidates`` the merged top-k column count
        (``sum(min(k, shard_rows))``) — the
        :class:`~repro.runtime.sharding.ShardedSession` accounting:
        ``max(shards) + B * host_topk_latency(candidates)``.
        """
        if not shard_latencies_ns:
            raise ValueError("need at least one shard latency")
        hop = queries * self.tech.host_topk_latency(candidates)
        return max(shard_latencies_ns) + hop

    def amortized_setup_ns(self, tenant_id: str) -> float:
        """Per-request setup share under the PR 1 amortization model:
        programming is charged once and spread over the traffic the
        session serves inside the amortization window."""
        profile = self.profile(tenant_id)
        hint = self.hint(tenant_id)
        expected = max(
            1.0, hint.rate_qps * self.amortize_window_s * hint.batch_rows
        )
        return profile.setup_latency_ns / expected

    # ------------------------------------------------ scheduling estimate
    def request_latency_ns(self, tenant_id: str) -> float:
        """One typical request's own service time (batch_rows x unit)."""
        hint = self.hint(tenant_id)
        return self.predict_query_latency_ns(tenant_id, hint.batch_rows)

    def burden_ns(self, tenant_id: str) -> float:
        """Offered work: ns of machine busy time per second of traffic.

        The autoscaler's "most cost-burdened" signal and the packer's
        heat metric — rate x service, so a rare heavy tenant and a
        frequent light one compare honestly.
        """
        return self.hint(tenant_id).rate_qps * self.request_latency_ns(
            tenant_id
        )

    def machine_load_ns(self, tenant_ids: Iterable[str]) -> float:
        """A machine's offered load: the co-residents' summed burden."""
        return sum(self.burden_ns(tid) for tid in tenant_ids)

    def response_ns(
        self, tenant_id: str, co_resident: Iterable[str]
    ) -> float:
        """Predicted per-request response on a machine shared with
        ``co_resident`` (tenant included or not — it is deduplicated).

        Own service + amortized setup, inflated by the foreign load's
        congestion: ``service * foreign_utilization / (1 - utilization)``
        — the deterministic M/G/1-flavoured estimate.  Monotone in
        foreign load and diverging toward saturation, which is all the
        packer's ranking needs; the calibrated composition rules above
        are what the tolerance tests pin to the simulator.
        """
        tids = set(co_resident) | {tenant_id}
        service = self.request_latency_ns(tenant_id)
        load = self.machine_load_ns(tids)
        foreign = load - self.burden_ns(tenant_id)
        rho = load * 1e-9
        rho_foreign = foreign * 1e-9
        congestion = rho_foreign / max(1.0 - rho, self.saturation_floor)
        return service * (1.0 + congestion) + self.amortized_setup_ns(
            tenant_id
        )

    def interference_ns(
        self, tenant_id: str, co_resident: Iterable[str]
    ) -> float:
        """The share of predicted response the co-residents add."""
        return self.response_ns(tenant_id, co_resident) - self.response_ns(
            tenant_id, ()
        )

    # ---------------------------------------------------------- the score
    def score_groups(
        self, groups: Sequence[Sequence[str]]
    ) -> CostBreakdown:
        """Score a packing given as per-machine tenant groups."""
        latency: Dict[str, float] = {}
        interference: Dict[str, float] = {}
        energy: Dict[str, float] = {}
        violations: List[str] = []
        loads: List[float] = []
        total = 0.0
        for group in groups:
            loads.append(self.machine_load_ns(group))
            for tid in group:
                hint = self.hint(tid)
                response = self.response_ns(tid, group)
                latency[tid] = response
                interference[tid] = self.interference_ns(tid, group)
                energy[tid] = self.predict_energy_pj(
                    tid, hint.batch_rows
                )
                weight = hint.rate_qps * (1.0 + max(0, hint.priority))
                if (
                    hint.deadline_s is not None
                    and response > hint.deadline_s * 1e9
                ):
                    violations.append(tid)
                    weight *= self.slo_penalty
                total += weight * response * 1e-9
                total += (
                    self.energy_weight
                    * hint.rate_qps
                    * energy[tid]
                    * 1e-9
                )
        return CostBreakdown(
            total=total,
            latency_ns=latency,
            interference_ns=interference,
            energy_pj=energy,
            machine_load_ns=tuple(loads),
            utilization=tuple(load * 1e-9 for load in loads),
            slo_violations=tuple(sorted(violations)),
        )

    def score(self, plan) -> CostBreakdown:
        """Score a :class:`~repro.runtime.placement.PlacementPlan`."""
        groups = [
            [a.tenant_id for a in plan.machine_tenants(index)]
            for index in range(plan.num_machines)
        ]
        return self.score_groups(groups)

    # ----------------------------------------------------------- utilities
    def with_hints(
        self, hints: Mapping[str, TrafficHint] | Iterable[TrafficHint]
    ) -> "PlacementCost":
        """The same calibrated model under a different traffic mix."""
        return PlacementCost(
            self.profiles,
            hints,
            tech=self.tech,
            energy_weight=self.energy_weight,
            amortize_window_s=self.amortize_window_s,
            saturation_floor=self.saturation_floor,
        )

    def calibration_error(
        self, tenant_id: str, report: ExecutionReport
    ) -> float:
        """Relative error of the model's latency prediction against a
        measured report (the calibration check the tests assert on)."""
        predicted = self.predict_query_latency_ns(
            tenant_id, max(1, report.queries)
        )
        measured = report.query_latency_ns
        if measured <= 0:
            return 0.0 if predicted <= 0 else float("inf")
        return abs(predicted - measured) / measured
