"""Fig. 8 — design-space exploration: subarray size × optimization config.

HDC/MNIST (8k dims) on N×N subarrays, N ∈ {16..256}, under cam-base,
cam-power, cam-density and cam-power+density.  Paper claims asserted:

* power config: ~0.57× base power at 16×16 shrinking to ~0.20× at 256×256;
  latency grows ~2× (32×32) to ~4.86× (256×256); energy ≈ base;
* density config: energy below base for small subarrays (~0.6× average for
  16–64), crossing over to above base at 128/256 (paper: 1.4× and 5.1×);
  execution time up to ~23× at 256×256;
* power+density: the lowest power of all configs (4.2 %–23.4 % of base in
  the paper), at a large latency cost.
"""

import pytest

from repro.arch import dse_spec

from harness import MNIST_QUERIES, print_series

SIZES = (16, 32, 64, 128, 256)
CONFIGS = ("latency", "power", "density", "power+density")
LABELS = {
    "latency": "cam-base",
    "power": "cam-power",
    "density": "cam-density",
    "power+density": "cam-power+density",
}


@pytest.fixture(scope="module")
def sweep(hdc_1bit):
    return {
        (target, n): hdc_1bit.run(dse_spec(n, target))
        for target in CONFIGS
        for n in SIZES
    }


def series(sweep, getter):
    return {
        target: [getter(sweep[(target, n)]) for n in SIZES]
        for target in CONFIGS
    }


def test_fig8a_energy(sweep):
    e = series(sweep, lambda r: r.energy.query_total)
    print_series(
        "Fig. 8a: energy (pJ/query)", [f"{n}x{n}" for n in SIZES],
        [(LABELS[t], e[t]) for t in CONFIGS],
    )
    base, power, density = e["latency"], e["power"], e["density"]
    # Power config: energy stays close to base (paper: "remains the same").
    for b, p in zip(base, power):
        assert abs(p - b) / b < 0.25
    # Density: cheaper than base for 32/64 ...
    assert density[1] < 0.8 * base[1]
    assert density[2] < 0.8 * base[2]
    # ... equal at 16 (same placement) ...
    assert density[0] == pytest.approx(base[0], rel=0.05)
    # ... and the crossover: more expensive at 128 and much more at 256
    # (paper: 1.4x and 5.1x).
    assert density[3] > base[3]
    assert density[4] > 2.0 * base[4]


def test_fig8b_latency(sweep):
    lat = series(sweep, lambda r: r.query_latency_ns)
    print_series(
        "Fig. 8b: latency (ms, full 10k-query MNIST test set)",
        [f"{n}x{n}" for n in SIZES],
        [(LABELS[t], [v * MNIST_QUERIES * 1e-6 for v in lat[t]])
         for t in CONFIGS],
    )
    base, power, density, both = (
        lat["latency"], lat["power"], lat["density"], lat["power+density"]
    )
    # Power: ~2x at 32x32 growing towards ~5x at 256x256 (paper: 2, 4.86).
    assert power[1] / base[1] == pytest.approx(2.0, rel=0.3)
    assert power[4] / base[4] == pytest.approx(4.86, rel=0.3)
    ratios = [p / b for p, b in zip(power, base)]
    assert ratios == sorted(ratios)
    # Density: large-subarray serialization; paper reports ~23x at 256.
    assert 8 <= density[4] / base[4] <= 30
    # Power+density: the slowest of all configurations at every size >16.
    for i in range(1, len(SIZES)):
        assert both[i] >= max(base[i], power[i], density[i]) * 0.99


def test_fig8c_power(sweep):
    pw = series(sweep, lambda r: r.power_mw)
    print_series(
        "Fig. 8c: power (mW)", [f"{n}x{n}" for n in SIZES],
        [(LABELS[t], pw[t]) for t in CONFIGS],
    )
    base, power, both = pw["latency"], pw["power"], pw["power+density"]
    # Power config saves power everywhere, more at larger subarrays
    # (paper: 0.57x at 16x16 down to 0.20x at 256x256).
    ratios = [p / b for p, b in zip(power, base)]
    assert all(r < 0.75 for r in ratios)
    assert ratios[-1] < 0.35
    assert ratios[-1] < ratios[0]
    # Power+density is the most power-efficient configuration overall
    # (paper: 23.4% of base at 16x16, 4.2% at the largest size).
    for i in range(1, len(SIZES)):
        assert both[i] <= min(pw[t][i] for t in CONFIGS if t != "power+density")


def test_base_latency_grows_with_columns(sweep):
    base = [sweep[("latency", n)].query_latency_ns for n in SIZES]
    assert base == sorted(base)  # ML discharge slows with columns


def test_base_energy_shrinks_with_size(sweep):
    base = [sweep[("latency", n)].energy.query_total for n in SIZES]
    assert base == sorted(base, reverse=True)  # fewer peripherals


def test_bench_dse_point(benchmark, hdc_1bit):
    benchmark.pedantic(
        lambda: hdc_1bit.run(dse_spec(64, "density")),
        rounds=3, iterations=1, warmup_rounds=1,
    )
