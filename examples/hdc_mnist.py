#!/usr/bin/env python
"""HDC classification on (synthetic) MNIST — the paper's main workload.

Trains binary (1-bit/TCAM) and multi-bit (2-bit/MCAM) HDC models, compiles
their similarity kernels with C4CAM, validates classification accuracy
against the numpy golden model, and compares end-to-end latency/energy
with the GPU baseline (paper §IV-B "GPU comparison").

Run:  python examples/hdc_mnist.py

Expected output: per-variant (1-bit TCAM, 2-bit MCAM) accuracy matching
the golden model, subarray/bank usage, and a GPU-comparison block where
the CAM wins by >10x in both per-query latency and energy.
"""

import numpy as np

from repro.apps import synthetic_mnist, train_hdc
from repro.arch import validation_spec
from repro.baselines import QUADRO_RTX_6000
from repro.compiler import C4CAMCompiler


def evaluate(bits: int, dataset, dims: int = 2048, n_eval: int = 32):
    model = train_hdc(dataset, dimensions=dims, bits=bits)
    spec = validation_spec(cols=64, bits_per_cell=bits)
    compiler = C4CAMCompiler(spec)

    kernel_model, example = model.kernel(n_queries=n_eval)
    kernel = compiler.compile(kernel_model, example)

    queries = model.encode_queries(dataset.test_x[:n_eval])
    _values, indices = kernel(queries)
    preds = indices.ravel()
    reference = model.classify_reference(queries)
    accuracy = (preds == dataset.test_y[:n_eval]).mean()
    report = kernel.last_report

    assert np.array_equal(preds, reference), "CAM diverged from reference"
    label = f"{bits}-bit ({'TCAM' if bits == 1 else 'MCAM'})"
    print(f"--- HDC {label}, {dims} dimensions ---")
    print(f"accuracy:           {accuracy:.3f}")
    print(f"per-query latency:  {report.query_latency_ns / n_eval:.2f} ns")
    print(f"per-query energy:   {report.energy.query_total / n_eval:.1f} pJ")
    print(f"subarrays / banks:  {report.subarrays_used} / {report.banks_used}")
    return model, report, n_eval


def gpu_comparison(model, report, n_eval):
    """End-to-end CAM vs GPU, paper §IV-B (48× / 46.8× on the testbed)."""
    from repro.arch.technology import FEFET_45NM as tech

    gpu_lat = QUADRO_RTX_6000.query_latency_ns(
        model.n_classes, model.dimensions
    )
    gpu_energy = QUADRO_RTX_6000.query_energy_pj(
        model.n_classes, model.dimensions
    )
    cam_lat = report.query_latency_ns / n_eval + tech.t_system_per_query
    cam_energy = (
        report.energy.query_total / n_eval + tech.e_system_per_query
    )
    print("\n--- GPU comparison (end-to-end, per query) ---")
    print(f"GPU ({QUADRO_RTX_6000.name}): {gpu_lat:.0f} ns, "
          f"{gpu_energy / 1e6:.2f} µJ")
    print(f"CAM system:                  {cam_lat:.0f} ns, "
          f"{cam_energy / 1e6:.2f} µJ")
    print(f"speedup: {gpu_lat / cam_lat:.1f}x   "
          f"energy improvement: {gpu_energy / cam_energy:.1f}x")


def main():
    dataset = synthetic_mnist(n_train=512, n_test=64)
    model1, report1, n_eval = evaluate(1, dataset)
    evaluate(2, dataset)
    gpu_comparison(model1, report1, n_eval)


if __name__ == "__main__":
    main()
