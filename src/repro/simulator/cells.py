"""CAM cell models: encoding and distance semantics per CAM type.

The cell type determines how patterns are stored and which distance the
match lines realise (paper §II-B):

* **BCAM/TCAM** — one bit per cell, bit-wise Hamming distance; TCAM adds
  the don't-care state ``x`` that matches both 0 and 1.
* **MCAM** — multi-bit cells; mismatch per cell is counted on the
  discretised values (multi-state Hamming), enabling multi-bit HDC and
  dot-product-style similarity à la iMARS.
* **ACAM** — analog ranges per cell; a query matches a cell when it falls
  inside the stored ``[lo, hi]`` range, the distance is how far outside.
"""

from __future__ import annotations

import numpy as np

#: TCAM don't-care marker in stored codes.  NaN never collides with real
#: data (bipolar ±1 hypervectors and quantized levels are all finite).
DONT_CARE = float("nan")


def is_dont_care(stored: np.ndarray) -> np.ndarray:
    """Boolean mask of don't-care cells."""
    return np.isnan(stored)


def quantize(data: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantize float data to ``2**bits`` integer levels.

    The range is taken from the data itself (symmetric min/max), matching
    the per-tensor calibration the HDC/KNN apps use.  Integer inputs are
    clipped to the level range but otherwise preserved.
    """
    levels = 1 << bits
    if np.issubdtype(data.dtype, np.integer):
        return np.clip(data, 0, levels - 1).astype(np.int64)
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        return np.zeros(data.shape, dtype=np.int64)
    scaled = (data - lo) / (hi - lo) * (levels - 1)
    return np.clip(np.rint(scaled), 0, levels - 1).astype(np.int64)


def hamming_distance(stored: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Per-row count of mismatching cells (don't-cares never mismatch).

    ``stored`` is ``R×C`` integer codes, ``query`` is length-``C`` or a
    ``B×C`` batch.  Returns a length-``R`` vector (``B×R`` for batches).
    """
    query = np.asarray(query)
    mism = stored != query[..., None, :]
    mism &= ~is_dont_care(stored)
    return mism.sum(axis=-1).astype(np.float64)


def euclidean_sq_distance(stored: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Per-row squared Euclidean distance (ACAM/MCAM analog metric).

    Don't-care cells contribute zero distance (an ACAM cell with an
    unbounded range matches any query value).  ``query`` may be a batch
    (``B×C`` → ``B×R`` scores).
    """
    query = np.asarray(query).astype(np.float64)
    diff = stored.astype(np.float64) - query[..., None, :]
    diff = np.where(is_dont_care(stored), 0.0, diff)
    return (diff * diff).sum(axis=-1)


def dot_similarity(stored: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Per-row dot product (multi-bit similarity search).

    Don't-care cells contribute nothing to the sum.  ``query`` may be a
    batch (``B×C`` → ``B×R`` scores).
    """
    s = np.where(is_dont_care(stored), 0.0, stored.astype(np.float64))
    # Broadcast-multiply + pairwise sum (not BLAS matmul) so batched and
    # single-query scores reduce in the same order — bitwise identical.
    query = np.asarray(query).astype(np.float64)
    return (s * query[..., None, :]).sum(axis=-1)


#: metric name -> (function, True when larger score means better match)
METRIC_FUNCTIONS = {
    "hamming": (hamming_distance, False),
    "euclidean": (euclidean_sq_distance, False),
    "dot": (dot_similarity, True),
}


#: Query-batch rows scored per vectorized step.  The batched kernels
#: materialize a ``chunk × R × C`` temporary; chunking bounds that to a
#: few MB regardless of the serving batch size.  Per-row reductions are
#: independent, so chunking is bitwise-invisible.
BATCH_CHUNK = 256


def compute_scores(metric: str, stored: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Dispatch to the metric implementation.

    ``query`` may be a single query (``C``) or a batch (``B×C``);
    batches are scored in :data:`BATCH_CHUNK`-row chunks to bound the
    broadcast temporaries.
    """
    try:
        fn, _ = METRIC_FUNCTIONS[metric]
    except KeyError:
        raise ValueError(f"unknown CAM metric: {metric!r}") from None
    query = np.asarray(query)
    if query.ndim > 1 and query.shape[0] > BATCH_CHUNK:
        return np.concatenate([
            fn(stored, query[i : i + BATCH_CHUNK])
            for i in range(0, query.shape[0], BATCH_CHUNK)
        ])
    return fn(stored, query)


def metric_prefers_larger(metric: str) -> bool:
    """True when a larger score is a better match for ``metric``."""
    return METRIC_FUNCTIONS[metric][1]


def perfect_score(metric: str, query: np.ndarray) -> float:
    """The score a stored row identical to ``query`` would produce.

    Distance metrics bottom out at 0; similarity metrics peak at the
    query's self-similarity.  This is the reference an EX (exact-match)
    sensing scheme compares against — the best *observed* score is not an
    exact match unless it reaches this value.
    """
    if metric not in METRIC_FUNCTIONS:
        raise ValueError(f"unknown CAM metric: {metric!r}")
    if not metric_prefers_larger(metric):
        return 0.0
    query = np.asarray(query, dtype=np.float64).reshape(1, -1)
    return float(compute_scores(metric, query, query[0])[0])
