"""C4CAM transformation passes (the compiler's middle end)."""

from .canonicalize import CSEPass, CanonicalizePass
from .cim_fusion import CimFuseOpsPass
from .cim_to_cam import CimToCamPass, LoweringError
from .cim_to_loops import CimToLoopsPass
from .optimizations import (
    MappingConfig,
    cam_search_metric,
    resolve_optimization,
    subarrays_required,
)
from .partitioning import (
    CapacityError,
    CimPartitionPass,
    PartitionPlan,
    check_plan_capacity,
    compute_partition_plan,
    machine_row_capacity,
    plan_of,
)
from .similarity_matching import SimilarityMatchingPass, match_similarity
from .torch_to_cim import TorchToCimPass

__all__ = [
    "CSEPass",
    "CanonicalizePass",
    "CapacityError",
    "CimFuseOpsPass",
    "CimToLoopsPass",
    "CimPartitionPass",
    "CimToCamPass",
    "LoweringError",
    "MappingConfig",
    "PartitionPlan",
    "SimilarityMatchingPass",
    "TorchToCimPass",
    "cam_search_metric",
    "check_plan_capacity",
    "compute_partition_plan",
    "machine_row_capacity",
    "match_similarity",
    "plan_of",
    "resolve_optimization",
    "subarrays_required",
]
