"""Replicated sessions and the async micro-batching serving engine.

PR 1 made the CAM a program-once / query-many device
(:class:`~repro.runtime.session.QuerySession`) and PR 2 scaled stored
*capacity* past one machine
(:class:`~repro.runtime.sharding.ShardedSession`) — but the runtime
still served one synchronous batch at a time from a single copy of the
store.  This module adds the *throughput* axis, the way asynchronous
memory-access designs (AMU) decouple request issue from completion on
fixed-latency hardware and hybrid data planes route each request to the
best path:

* :class:`ReplicatedSession` — R independently programmed **replicas**
  of one (possibly sharded) store.  Replicas are cloned from the
  compiled session (``clone()``: same lowered modules, plans and query
  programs — nothing recompiles; only the per-copy machine programming
  that real replicated hardware genuinely pays).  Each batch routes to
  the least-loaded replica; per-replica "lane" accounting merges into an
  honest concurrent report
  (:func:`~repro.simulator.metrics.merge_concurrent_reports`): energy
  and silicon scale with R, wall time is the longest lane, and
  ``throughput_qps`` reflects the concurrency replication buys.
* :class:`ServingEngine` — an asynchronous front door.  Clients
  ``submit()`` single queries or small batches and get a
  :class:`~concurrent.futures.Future` back immediately; a dispatcher
  thread coalesces queued requests into micro-batches (up to
  ``max_batch`` rows, waiting at most ``max_wait`` seconds to fill one)
  and hands each micro-batch to the least-loaded replica's worker.

**Identity guarantee** — with device noise disabled, the values/indices
a future resolves to are *bitwise identical* to calling the underlying
session's ``run_batch`` directly on that request's rows, regardless of
how requests were coalesced or which replica served them: every replica
is programmed with the same stored set, and match-line scores are
row-local, so micro-batch grouping cannot change any per-query result.
(With ``noise_sigma > 0`` replicas draw decorrelated noise streams and
the guarantee intentionally does not hold.)

Scheduling is wall-clock-real but device time is simulated; the optional
``time_scale`` knob (wall seconds per simulated nanosecond) makes each
worker *hold* its replica for the micro-batch's simulated latency, so
wall-clock experiments (e.g. ``benchmarks/test_serving_throughput.py``)
see the fixed-latency-device behaviour the paper's hardware would have.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, List, Optional

import numpy as np

from repro.simulator.metrics import (
    EnergyBreakdown,
    ExecutionReport,
    merge_concurrent_reports,
)

from .machineview import MachineGroupView
from .session import SessionError

__all__ = ["LaneStats", "ReplicatedSession", "ServingEngine"]


# ----------------------------------------------------------------- lanes
def _setup_report(replica) -> ExecutionReport:
    """A zero-query report carrying ``replica``'s setup cost and silicon.

    The starting point of one replica's lane: even a replica that never
    serves a batch burned its pattern-programming energy and occupies
    its machines.
    """
    custom = getattr(replica, "setup_report", None)
    if custom is not None:  # MultiTenantSession knows its own baseline
        return custom()
    sessions = getattr(replica, "sessions", None)
    if sessions is not None:  # ShardedSession: one machine per shard
        write = sum(s.setup_energy_pj for s in sessions)
        setup = max(s.setup_latency_ns for s in sessions)
        view = replica  # the aggregate machine view
    else:
        write = replica.setup_energy_pj
        setup = replica.setup_latency_ns
        # The session's own (tenant-scoped) allocation counts: equal to
        # the machine totals for a private machine, and exactly the
        # session's banks when it is colocated on a shared one.
        view = replica
    return ExecutionReport(
        setup_latency_ns=setup,
        energy=EnergyBreakdown(write=write),
        banks_used=view.banks_used,
        mats_used=view.mats_used,
        arrays_used=view.arrays_used,
        subarrays_used=view.subarrays_used,
        queries=0,
        spec=replica.spec,
    )


class LaneStats:
    """Serialized totals of one backend's traffic (its "lane").

    The accumulation shape shared by replica lanes (one per copy in a
    :class:`ReplicatedSession`) and tenant lanes (one per tenant in a
    :class:`~repro.runtime.placement.MultiTenantSession`): query work
    folds in per batch, the one-time setup baseline is charged once via
    :func:`_setup_report` — tenant-scoped for a colocated session.
    """

    def __init__(self, replica):
        self.base = _setup_report(replica)
        self.latency_ns = 0.0
        self.queries = 0
        self.searches = 0
        self.cycles = 0
        self.energy = EnergyBreakdown()

    def add(self, report: ExecutionReport) -> None:
        """Fold one batch report into the lane.

        Batch reports each re-state the session's one-time setup (write)
        cost; the lane charges it once via :attr:`base` instead.
        """
        self.latency_ns += report.query_latency_ns
        self.queries += report.queries
        self.searches += report.searches
        self.cycles += report.search_cycles
        for key, value in report.energy.as_dict().items():
            if key != "write":
                setattr(self.energy, key, getattr(self.energy, key) + value)

    def report(self) -> ExecutionReport:
        energy = EnergyBreakdown(**self.energy.as_dict())
        energy.write = self.base.energy.write
        return ExecutionReport(
            query_latency_ns=self.latency_ns,
            setup_latency_ns=self.base.setup_latency_ns,
            energy=energy,
            banks_used=self.base.banks_used,
            mats_used=self.base.mats_used,
            arrays_used=self.base.arrays_used,
            subarrays_used=self.base.subarrays_used,
            searches=self.searches,
            search_cycles=self.cycles,
            queries=self.queries,
            spec=self.base.spec,
        )


# ----------------------------------------------------------- replication
class ReplicatedSession(MachineGroupView):
    """R independently programmed copies of one store, for throughput.

    Wraps a compiled :class:`~repro.runtime.session.QuerySession` or
    :class:`~repro.runtime.sharding.ShardedSession` and clones it
    ``num_replicas - 1`` times — sharing every compiled artifact,
    programming a fresh machine (or machine group) per copy.  Unlike
    sharding, every replica holds the *whole* store: replication buys
    concurrent serving capacity, not rows.

    :meth:`run_batch` keeps the synchronous session contract (identical
    results, per-batch ``last_report``) while routing each batch to the
    replica with the least accumulated simulated busy time;
    :meth:`run_on` pins a batch to an explicit replica (the
    :class:`ServingEngine` routes by queue depth and calls this).
    :meth:`report` merges the per-replica lanes into one concurrent
    deployment report — energy/area scale with R, latency is the longest
    lane, ``throughput_qps`` reflects the added concurrency.

    The object is also the aggregate machine view over every replica
    machine (for :func:`repro.simulator.analysis.utilization` /
    ``format_report``), mirroring ``ShardedSession``.
    """

    def __init__(self, base, num_replicas: int):
        if num_replicas < 1:
            raise SessionError("a replicated session needs >= 1 replica")
        if not hasattr(base, "clone"):
            raise SessionError(
                "the base session cannot be replicated: it does not "
                "support clone() (need a QuerySession or ShardedSession)"
            )
        self.replicas = [base]
        for _ in range(num_replicas - 1):
            self.replicas.append(base.clone())
        self.spec = base.spec
        self.tech = base.tech
        self._lock = threading.Lock()
        self._lanes = [LaneStats(replica) for replica in self.replicas]
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0

    # ------------------------------------------------------------ topology
    #: Aggregate machine view (:class:`MachineGroupView`): counters and
    #: silicon span every replica — R copies really occupy R machines.
    _group_noun = "replica set"

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def machines(self) -> List:
        """Every physical machine across all replicas (shards included)."""
        out = []
        for replica in self.replicas:
            group = getattr(replica, "machines", None)
            if group is not None:
                out.extend(group)
            else:
                out.append(replica.machine)
        return out

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Clear query-side state on every replica; patterns survive."""
        for replica in self.replicas:
            replica.reset()
        with self._lock:
            self._lanes = [LaneStats(r) for r in self.replicas]
            self.last_report = None
            self.batches_run = 0

    # ------------------------------------------------------------- queries
    def run_on(
        self, index: int, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Serve one batch on replica ``index``; records its lane.

        Concurrent calls are safe for *distinct* indices (the engine
        runs one worker per replica); a single replica must serve its
        batches serially, like the hardware it models.  ``tenant``
        routes the batch to that tenant's store when the replicas are
        multi-tenant fleets
        (:class:`~repro.runtime.placement.MultiTenantSession`).
        """
        replica = self.replicas[index]
        if tenant is None:
            outputs = replica.run_batch(queries)
        else:
            outputs = replica.run_batch(tenant, queries)
        report = replica.last_report
        with self._lock:
            self._lanes[index].add(report)
            self.last_report = report
            self.batches_run += 1
        return outputs

    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Serve one batch on the least-loaded replica (synchronous).

        Load is the lane's accumulated simulated busy time, so a stream
        of equal batches round-robins and unequal batches rebalance;
        ties break to the lowest replica index.  Results and the
        per-batch ``last_report`` are exactly what the base session
        would produce.
        """
        with self._lock:
            index = min(
                range(len(self.replicas)),
                key=lambda i: (self._lanes[i].latency_ns, i),
            )
        return self.run_on(index, queries, tenant=tenant)

    # -------------------------------------------------------------- report
    def lane_reports(self) -> List[ExecutionReport]:
        """One serialized report per replica lane (setup charged once)."""
        with self._lock:
            return [lane.report() for lane in self._lanes]

    def report(self) -> ExecutionReport:
        """The concurrent deployment report across all replica lanes."""
        return merge_concurrent_reports(self.lane_reports())

    def tenant_report(self, tenant_id: str) -> ExecutionReport:
        """One tenant's view across every replica of a multi-tenant
        deployment: the tenant's traffic split over R fleets serves
        concurrently, so its lanes merge like replica lanes."""
        if not hasattr(self.replicas[0], "tenant_report"):
            raise SessionError(
                "the replicas are not multi-tenant sessions; use report()"
            )
        return merge_concurrent_reports(
            [replica.tenant_report(tenant_id) for replica in self.replicas]
        )


# -------------------------------------------------------------- the engine
class _Request:
    """One queued client request: its rows, tenant and future."""

    __slots__ = ("queries", "rows", "future", "tenant")

    def __init__(self, queries: np.ndarray, tenant: Optional[str] = None):
        self.queries = queries
        self.rows = queries.shape[0]
        self.future: Future = Future()
        self.tenant = tenant


_SHUTDOWN = object()


def _feature_width(replica) -> Optional[int]:
    """The query width ``replica`` serves, when it can tell us."""
    program = getattr(replica, "program", None)
    if program is not None:
        return program.plan.features
    shard_set = getattr(replica, "shard_set", None)
    if shard_set is not None:
        return shard_set.features
    features = getattr(replica, "features", None)
    return features if isinstance(features, int) else None


def _tenant_widths(replica) -> Optional[dict]:
    """Per-tenant query widths of a multi-tenant backend, else None."""
    features = getattr(replica, "tenant_features", None)
    return dict(features) if isinstance(features, dict) else None


def _default_split(result, lo: int, hi: int):
    """Slice a ``run_batch``-shaped result (arrays over the batch dim)."""
    if isinstance(result, np.ndarray):
        return result[lo:hi]
    if isinstance(result, (list, tuple)):
        return type(result)(part[lo:hi] for part in result)
    raise TypeError(
        f"cannot split a {type(result).__name__} result across requests; "
        "pass an explicit split= function to the ServingEngine"
    )


class ServingEngine:
    """Async front door: queue in, micro-batches out, futures back.

    ``session`` is what to serve on: a :class:`ReplicatedSession` (the
    usual case), a bare ``QuerySession``/``ShardedSession`` (wrapped
    into a single-replica deployment), or an explicit list of replica
    backends — any objects with ``run_batch(queries)`` (used by
    :meth:`repro.apps.matching.PatternMatcher.serve`, whose results are
    per-query lists rather than stacked arrays; such backends pass a
    matching ``split``).

    Three kinds of thread cooperate:

    * **clients** call :meth:`submit` (thread-safe, non-blocking) and
      hold the returned future;
    * one **dispatcher** coalesces queued requests into micro-batches —
      a batch closes when it holds ``max_batch`` query rows or
      ``max_wait`` seconds passed since its first request (a request
      that would overflow the cap seeds the next batch instead, so
      micro-batches never exceed ``max_batch`` unless a single request
      alone does) — and assigns each batch to the replica with the
      fewest outstanding rows;
    * one **worker per replica** serves its queue in order, optionally
      holds the replica for the batch's simulated latency
      (``time_scale`` wall-seconds per simulated ns), then resolves
      each request's future with its slice of the batch result.

    :meth:`shutdown` drains in-flight work (``wait=True``, the default —
    every already-submitted future resolves) or aborts it
    (``wait=False`` — unserved futures are cancelled); either way the
    engine refuses new submissions afterwards.  The engine is a context
    manager: a clean ``with`` exit drains, an exceptional one aborts.
    """

    def __init__(
        self,
        session,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
        split: Optional[Callable] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be a positive row count")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0 seconds")
        if isinstance(session, (list, tuple)):
            if not session:
                raise SessionError("the engine needs at least one replica")
            self.session = None
            self._replicas = list(session)
        else:
            if not hasattr(session, "run_on"):
                session = ReplicatedSession(session, 1)
            self.session = session
            self._replicas = session.replicas
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.time_scale = time_scale
        self._split = split or _default_split
        # Feature width every request must share (requests coalesce).
        # Seeded from the backend when it knows; otherwise the first
        # request pins it.  Multi-tenant backends instead carry one
        # width per tenant, and every submit must name its tenant.
        self._tenants: Optional[dict] = _tenant_widths(self._replicas[0])
        self._features: Optional[int] = (
            None if self._tenants is not None
            else _feature_width(self._replicas[0])
        )

        self._intake: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._abort = False
        self._outstanding = [0] * len(self._replicas)
        self.requests_submitted = 0
        self.batches_dispatched = 0
        self.rows_dispatched = [0] * len(self._replicas)

        # Wall-clock device booking per replica (pacing): the time until
        # which the simulated device is occupied, so queued micro-batches
        # run back-to-back regardless of host scheduling jitter.
        self._busy_until = [0.0] * len(self._replicas)
        self._worker_queues = [queue.Queue() for _ in self._replicas]
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(i,), daemon=True,
                name=f"serving-replica-{i}",
            )
            for i in range(len(self._replicas))
        ]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="serving-dispatch"
        )
        for worker in self._workers:
            worker.start()
        self._dispatcher.start()

    # ------------------------------------------------------------- clients
    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    def submit(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> Future:
        """Enqueue one request (a single ``D`` query or a small ``B×D``
        batch); returns its future immediately.

        The future resolves to the request's own rows of the batch
        result — for session backends, ``[values, indices]`` arrays with
        leading dimension ``B`` (1 for a single query) — bitwise what
        ``run_batch`` on exactly these rows returns.  It raises the
        serving error if the backend failed, and is cancelled if the
        engine shuts down with ``wait=False`` before serving it.

        Over a multi-tenant fleet every request names its ``tenant``;
        the dispatcher only coalesces requests of the same tenant into a
        micro-batch, so one serving fleet multiplexes all the colocated
        kernels without ever mixing their queries.
        """
        batch = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if batch.ndim != 2 or batch.shape[0] == 0:
            raise ValueError(
                "submit() takes one 1-D query or a non-empty 2-D batch"
            )
        request = _Request(batch, tenant=tenant)
        with self._lock:
            if self._closed:
                raise SessionError(
                    "the serving engine is shut down; no new requests"
                )
            if self._tenants is not None:
                # Multi-tenant backend: the tenant picks the store (and
                # its feature width).
                if tenant is None:
                    raise SessionError(
                        "this engine serves a multi-tenant fleet; pass "
                        "submit(queries, tenant=...) with one of "
                        f"{sorted(self._tenants)}"
                    )
                if tenant not in self._tenants:
                    raise SessionError(
                        f"no tenant {tenant!r} on this fleet; tenants: "
                        f"{sorted(self._tenants)}"
                    )
                if batch.shape[1] != self._tenants[tenant]:
                    raise ValueError(
                        f"query width {batch.shape[1]} does not match "
                        f"tenant {tenant!r}'s feature dimension "
                        f"{self._tenants[tenant]}"
                    )
            elif tenant is not None:
                raise SessionError(
                    "this engine's backend is single-tenant; submit "
                    "without a tenant id"
                )
            # All coalescable requests must share one feature width —
            # reject misfits here, at the caller, instead of poisoning a
            # whole micro-batch later.
            elif self._features is None:
                self._features = batch.shape[1]
            elif batch.shape[1] != self._features:
                raise ValueError(
                    f"query width {batch.shape[1]} does not match this "
                    f"engine's feature dimension {self._features}"
                )
            self.requests_submitted += 1
            self._intake.put(request)
        return request.future

    def map(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[Future]:
        """Submit every row of ``queries`` as its own request."""
        batch = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.submit(row, tenant=tenant) for row in batch]

    # ---------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        holdover: Optional[_Request] = None
        while True:
            first = holdover if holdover is not None else self._intake.get()
            holdover = None
            if first is _SHUTDOWN:
                break
            batch = [first]
            rows = first.rows
            deadline = time.monotonic() + self.max_wait
            stop = False
            while rows < self.max_batch:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    nxt = self._intake.get(timeout=timeout)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                if nxt.tenant != first.tenant:
                    # Never mix tenants in one micro-batch: the next
                    # request seeds its own batch instead.
                    holdover = nxt
                    break
                if rows + nxt.rows > self.max_batch:
                    holdover = nxt  # seeds the next micro-batch
                    break
                batch.append(nxt)
                rows += nxt.rows
            self._dispatch(batch, rows)
            if stop:
                break

    def _dispatch(self, batch: List[_Request], rows: int) -> None:
        with self._lock:
            index = min(
                range(len(self._replicas)),
                key=lambda i: (self._outstanding[i], i),
            )
            self._outstanding[index] += rows
            self.batches_dispatched += 1
            self.rows_dispatched[index] += rows
        if len(batch) == 1:
            queries = batch[0].queries
        else:
            queries = np.concatenate([r.queries for r in batch], axis=0)
        self._worker_queues[index].put(
            (batch, queries, batch[0].tenant, time.perf_counter())
        )

    # ------------------------------------------------------------- workers
    def _run(self, index: int, queries: np.ndarray, tenant: Optional[str]):
        if self.session is not None:
            return self.session.run_on(index, queries, tenant=tenant)
        replica = self._replicas[index]
        if tenant is not None:
            return replica.run_batch(tenant, queries)
        return replica.run_batch(queries)

    def _pace(self, index: int, dispatched: float) -> None:
        """Book the replica's simulated batch latency on the wall clock.

        Occupancy is booked back-to-back from the *dispatch* time: a
        micro-batch that arrives while the device is still busy starts
        when it frees, so a queued replica drains at exactly its service
        rate (absolute deadlines — host scheduling jitter does not
        accumulate), while an idle replica charges the full service time
        from arrival.  This is the fixed-latency-device behaviour the
        async-serving benchmarks measure.
        """
        if self.time_scale <= 0.0:
            return
        report = getattr(self._replicas[index], "last_report", None)
        if report is None:
            return
        busy_s = report.query_latency_ns * self.time_scale
        target = max(dispatched, self._busy_until[index]) + busy_s
        self._busy_until[index] = target
        remaining = target - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)

    def _worker_loop(self, index: int) -> None:
        inbox = self._worker_queues[index]
        while True:
            item = inbox.get()
            if item is _SHUTDOWN:
                break
            batch, queries, tenant, dispatched = item
            try:
                if self._abort:
                    for request in batch:
                        request.future.cancel()
                    continue
                # Any failure — the backend, the pacing, or splitting
                # the result — is delivered to the batch's futures; the
                # lane itself must survive to serve later batches.
                try:
                    result = self._run(index, queries, tenant)
                    self._pace(index, dispatched)
                    offset = 0
                    for request in batch:
                        piece = self._split(
                            result, offset, offset + request.rows
                        )
                        offset += request.rows
                        self._resolve(request.future.set_result, piece)
                except BaseException as exc:
                    for request in batch:
                        self._resolve(request.future.set_exception, exc)
            finally:
                with self._lock:
                    self._outstanding[index] -= sum(r.rows for r in batch)

    @staticmethod
    def _resolve(setter, payload) -> None:
        try:
            setter(payload)
        except InvalidStateError:
            pass  # the client cancelled this future; nothing to deliver

    # ------------------------------------------------------------ lifecycle
    def shutdown(self, wait: bool = True) -> None:
        """Stop the engine.  Idempotent.

        ``wait=True`` (default) drains: every request submitted before
        the call is served and its future resolved before this returns.
        ``wait=False`` aborts: queued and not-yet-served requests get
        their futures cancelled; only the batches already inside a
        backend finish.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if not wait:
            self._abort = True
        if already:
            # A later, stricter shutdown still propagates the abort;
            # the threads are already winding down.
            for worker in self._workers:
                worker.join()
            return
        self._intake.put(_SHUTDOWN)
        self._dispatcher.join()
        for inbox in self._worker_queues:
            inbox.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -------------------------------------------------------------- report
    def report(self) -> ExecutionReport:
        """The concurrent deployment report over every replica lane."""
        if self.session is not None:
            return self.session.report()
        reports = [
            replica.report()
            for replica in self._replicas
            if hasattr(replica, "report")
        ]
        if not reports:
            raise SessionError(
                "these replica backends expose no report(); read their "
                "own accounting directly"
            )
        return merge_concurrent_reports(reports)

    def stats(self) -> dict:
        """Scheduler counters: what was submitted and how it was routed."""
        with self._lock:
            return {
                "requests_submitted": self.requests_submitted,
                "batches_dispatched": self.batches_dispatched,
                "rows_dispatched": list(self.rows_dispatched),
                "outstanding_rows": sum(self._outstanding),
            }
