"""``cim-to-loops``: the host fallback lowering (paper Fig. 3, right path).

Execute blocks that are *not* offloaded to a CAM (no similarity pattern, or
no device available) are lowered to plain ``scf.for`` loop nests over
memrefs with ``arith`` scalar ops — the "lower to loops, and optimize" box
of the paper's overview figure.  The resulting IR contains no torch/cim
ops and runs on the host executor.

Supported compute ops: ``cim.transpose`` (2-D), ``cim.matmul``,
``cim.sub`` / ``cim.div`` (2-D with optional rank-1/row broadcast),
``cim.norm`` (p=2 along the last dim).  Blocks containing anything else
are left untouched (they still execute on the host reference path).
"""

from __future__ import annotations

from typing import Dict, List

from repro.dialects import arith as arith_d
from repro.dialects import cim as cim_d
from repro.dialects import memref as memref_d
from repro.dialects import scf as scf_d
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType, f32
from repro.ir.value import Value
from repro.passes.pass_manager import FunctionPass

LOWERABLE = ("cim.transpose", "cim.matmul", "cim.sub", "cim.div", "cim.norm")


class CimToLoopsPass(FunctionPass):
    """Lower loop-lowerable cim.execute blocks to scf loop nests."""

    NAME = "cim-to-loops"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.body.operations):
            if isinstance(op, cim_d.ExecuteOp) and _is_lowerable(op):
                _lower_execute(op)


def _is_lowerable(execute: cim_d.ExecuteOp) -> bool:
    body = execute.body.operations
    return all(
        o.name in LOWERABLE or o.name == "cim.yield" for o in body
    ) and len(body) > 1


class _LoopEmitter:
    """Emits loop nests; caches index constants before an anchor."""

    def __init__(self, builder: OpBuilder):
        self.b = builder
        anchor = builder.create(arith_d.ConstantOp, 0)
        self._consts = {0: anchor.result}
        self._anchor = anchor

    def const(self, v: int) -> Value:
        if v not in self._consts:
            self._consts[v] = OpBuilder.before(self._anchor).create(
                arith_d.ConstantOp, v
            ).result
        return self._consts[v]


def _lower_execute(execute: cim_d.ExecuteOp) -> None:
    builder = OpBuilder.before(execute)
    em = _LoopEmitter(builder)

    # Bufferize the inputs once.
    buffers: Dict[int, Value] = {}
    for arg, outer in zip(execute.body.arguments, execute.inputs):
        if isinstance(outer.type, TensorType):
            buffers[id(arg)] = builder.create(
                memref_d.ToMemrefOp, outer
            ).result

    yld = execute.body.terminator
    for op in execute.body.operations:
        if op is yld:
            break
        out_buf = _lower_op(em, builder, op, buffers)
        for res in op.results:
            buffers[id(res)] = out_buf

    results = []
    for res_outer, res_inner in zip(execute.results, yld.operands):
        buf = buffers[id(res_inner)]
        results.append(
            builder.create(memref_d.ToTensorOp, buf, res_outer.type).result
        )
    device = execute.device
    execute.replace_with(results)
    for user in list(device.users()):
        if isinstance(user, cim_d.ReleaseOp):
            user.erase()
    if not device.has_uses:
        acquire = getattr(device, "op", None)
        if acquire is not None:
            acquire.erase()


def _buf(buffers: Dict[int, Value], value: Value) -> Value:
    try:
        return buffers[id(value)]
    except KeyError:
        raise RuntimeError(
            "cim-to-loops: operand does not come from the block inputs or "
            "an earlier lowered op"
        ) from None


def _alloc(builder: OpBuilder, shape) -> Value:
    return builder.create(memref_d.AllocOp, MemRefType(list(shape), f32)).result


def _lower_op(
    em: _LoopEmitter, builder: OpBuilder, op: Operation, buffers
) -> Value:
    if op.name == "cim.transpose":
        return _lower_transpose(em, builder, op, buffers)
    if op.name == "cim.matmul":
        return _lower_matmul(em, builder, op, buffers)
    if op.name in ("cim.sub", "cim.div"):
        return _lower_elementwise(em, builder, op, buffers)
    if op.name == "cim.norm":
        return _lower_norm(em, builder, op, buffers)
    raise RuntimeError(f"cim-to-loops: unsupported op {op.name}")


def _nest(em: _LoopEmitter, builder: OpBuilder, bounds: List[int]):
    """A perfect scf.for nest; returns (innermost builder, [ivs])."""
    ivs: List[Value] = []
    current = builder
    for bound in bounds:
        loop = current.create(
            scf_d.ForOp, em.const(0), em.const(bound), em.const(1)
        )
        body = OpBuilder.at_end(loop.body)
        ivs.append(loop.induction_var)
        yield_op = body.create(scf_d.YieldOp, [])
        current = OpBuilder.before(yield_op)
    return current, ivs


def _lower_transpose(em, builder, op, buffers) -> Value:  # noqa: F811
    src = _buf(buffers, op.operands[0])
    rows, cols = op.operands[0].type.shape
    out = _alloc(builder, (cols, rows))
    inner, (i, j) = _nest(em, builder, [rows, cols])
    v = inner.create(memref_d.LoadOp, src, [i, j])
    inner.create(memref_d.StoreOp, v.result, out, [j, i])
    return out


def _lower_matmul(em, builder, op, buffers) -> Value:
    lhs = _buf(buffers, op.operands[0])
    rhs = _buf(buffers, op.operands[1])
    m, k = op.operands[0].type.shape
    _k, n = op.operands[1].type.shape
    out = _alloc(builder, (m, n))
    builder.create(memref_d.FillOp, out, 0.0)
    inner, (i, j, kk) = _nest(em, builder, [m, n, k])
    a = inner.create(memref_d.LoadOp, lhs, [i, kk])
    bv = inner.create(memref_d.LoadOp, rhs, [kk, j])
    prod = inner.create(arith_d.MulFOp, a.result, bv.result)
    acc = inner.create(memref_d.LoadOp, out, [i, j])
    new = inner.create(arith_d.AddFOp, acc.result, prod.result)
    inner.create(memref_d.StoreOp, new.result, out, [i, j])
    return out


def _lower_elementwise(em, builder, op, buffers) -> Value:
    lhs_v, rhs_v = op.operands[0], op.operands[1]
    out_shape = op.result.type.shape
    lhs = _buf(buffers, lhs_v)
    rhs = _buf(buffers, rhs_v)
    out = _alloc(builder, out_shape)
    scalar_cls = arith_d.SubFOp if op.name == "cim.sub" else arith_d.DivFOp
    if len(out_shape) == 1:
        inner, (i,) = _nest(em, builder, [out_shape[0]])
        a = inner.create(memref_d.LoadOp, lhs, _bcast_idx(lhs_v, [i], em))
        b = inner.create(memref_d.LoadOp, rhs, _bcast_idx(rhs_v, [i], em))
        r = inner.create(scalar_cls, a.result, b.result)
        inner.create(memref_d.StoreOp, r.result, out, [i])
        return out
    rows, cols = out_shape
    inner, (i, j) = _nest(em, builder, [rows, cols])
    a = inner.create(memref_d.LoadOp, lhs, _bcast_idx(lhs_v, [i, j], em))
    b = inner.create(memref_d.LoadOp, rhs, _bcast_idx(rhs_v, [i, j], em))
    r = inner.create(scalar_cls, a.result, b.result)
    inner.create(memref_d.StoreOp, r.result, out, [i, j])
    return out


def _bcast_idx(value: Value, ivs: List[Value], em: _LoopEmitter) -> List[Value]:
    """Indices into ``value`` for an output index, numpy broadcast rules."""
    shape = value.type.shape
    idx: List[Value] = []
    for dim, iv in zip(
        range(len(shape)), ivs[len(ivs) - len(shape):]
    ):
        idx.append(em.const(0) if shape[dim] == 1 else iv)
    return idx


def _lower_norm(em, builder, op, buffers) -> Value:
    src_v = op.operands[0]
    src = _buf(buffers, src_v)
    p = op.attributes["p"].value
    if p != 2:
        raise RuntimeError("cim-to-loops lowers only the 2-norm")
    shape = src_v.type.shape
    if len(shape) == 1:
        out = _alloc(builder, (1,))
        builder.create(memref_d.FillOp, out, 0.0)
        inner, (i,) = _nest(em, builder, [shape[0]])
        v = inner.create(memref_d.LoadOp, src, [i])
        sq = inner.create(arith_d.MulFOp, v.result, v.result)
        acc = inner.create(memref_d.LoadOp, out, [em.const(0)])
        s = inner.create(arith_d.AddFOp, acc.result, sq.result)
        inner.create(memref_d.StoreOp, s.result, out, [em.const(0)])
        _sqrt_inplace(em, builder, out, [1])
        return out
    rows, cols = shape
    out = _alloc(builder, (rows,))
    builder.create(memref_d.FillOp, out, 0.0)
    inner, (i, j) = _nest(em, builder, [rows, cols])
    v = inner.create(memref_d.LoadOp, src, [i, j])
    sq = inner.create(arith_d.MulFOp, v.result, v.result)
    acc = inner.create(memref_d.LoadOp, out, [i])
    s = inner.create(arith_d.AddFOp, acc.result, sq.result)
    inner.create(memref_d.StoreOp, s.result, out, [i])
    _sqrt_inplace(em, builder, out, [rows])
    return out


def _sqrt_inplace(em, builder, buf: Value, shape: List[int]) -> None:
    inner, (i,) = _nest(em, builder, [shape[0]])
    v = inner.create(memref_d.LoadOp, buf, [i])
    r = inner.create(arith_d.SqrtOp, v.result)
    inner.create(memref_d.StoreOp, r.result, buf, [i])
