"""Application (HDC/KNN/datasets) and baseline (GPU/manual) tests."""

import numpy as np
import pytest

from repro.apps import (
    build_knn,
    pad_features,
    pad_rows,
    synthetic_mnist,
    synthetic_pneumonia,
    train_hdc,
)
from repro.apps.hdc import HDCEncoder
from repro.arch import paper_spec, validation_spec
from repro.baselines import QUADRO_RTX_6000, GpuModel, run_manual_similarity
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder


class TestDatasets:
    def test_mnist_shapes(self):
        ds = synthetic_mnist(n_train=64, n_test=16)
        assert ds.train_x.shape == (64, 784)
        assert ds.test_x.shape == (16, 784)
        assert ds.n_classes == 10
        assert ds.train_y.max() < 10

    def test_pneumonia_shapes(self):
        ds = synthetic_pneumonia(n_train=32, n_test=8)
        assert ds.n_classes == 2
        assert ds.n_features == 1024

    def test_deterministic(self):
        a = synthetic_mnist(n_train=16, n_test=4)
        b = synthetic_mnist(n_train=16, n_test=4)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_classes_separable(self):
        """Nearest-template classification must beat chance by far."""
        ds = synthetic_mnist(n_train=128, n_test=64)
        # 1-NN on raw pixels
        correct = 0
        for x, y in zip(ds.test_x, ds.test_y):
            d = ((ds.train_x - x) ** 2).sum(axis=1)
            correct += ds.train_y[d.argmin()] == y
        assert correct / len(ds.test_y) > 0.5

    def test_pad_features(self):
        x = np.ones((3, 10), dtype=np.float32)
        p = pad_features(x, 8)
        assert p.shape == (3, 16)
        np.testing.assert_array_equal(p[:, 10:], 0)
        assert pad_features(x, 5) is x

    def test_pad_rows(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        y = np.array([0, 1, 2])
        px, py, n = pad_rows(x, y, 4)
        assert px.shape == (4, 4) and n == 3
        np.testing.assert_array_equal(px[3], x[0])
        assert py[3] == y[0]


class TestHDC:
    def test_encoder_bipolar(self):
        enc = HDCEncoder(16, dimensions=128)
        hv = enc.encode(np.random.default_rng(0).standard_normal((4, 16)))
        assert hv.shape == (4, 128)
        assert set(np.unique(hv)) <= {-1.0, 1.0}

    def test_train_prototypes(self):
        ds = synthetic_mnist(n_train=64, n_test=8)
        model = train_hdc(ds, dimensions=256, bits=1)
        assert model.prototypes.shape == (10, 256)
        assert set(np.unique(model.prototypes)) <= {-1.0, 1.0}

    def test_train_2bit_levels(self):
        ds = synthetic_mnist(n_train=64, n_test=8)
        model = train_hdc(ds, dimensions=256, bits=2)
        assert set(np.unique(model.prototypes)) <= {0.0, 1.0, 2.0, 3.0}

    def test_bits_validation(self):
        ds = synthetic_mnist(n_train=16, n_test=4)
        with pytest.raises(ValueError):
            train_hdc(ds, bits=3)

    def test_reference_accuracy(self):
        ds = synthetic_mnist(n_train=256, n_test=64)
        model = train_hdc(ds, dimensions=1024, bits=1)
        q = model.encode_queries(ds.test_x)
        acc = (model.classify_reference(q) == ds.test_y).mean()
        assert acc > 0.8

    @pytest.mark.parametrize("bits", [1, 2])
    def test_cam_matches_reference(self, bits):
        ds = synthetic_mnist(n_train=128, n_test=16)
        model = train_hdc(ds, dimensions=512, bits=bits)
        queries = model.encode_queries(ds.test_x[:8])
        spec = validation_spec(cols=32, bits_per_cell=bits)
        kernel_model, example = model.kernel(n_queries=8)
        kernel = C4CAMCompiler(spec).compile(kernel_model, example)
        _v, idx = kernel(queries)
        np.testing.assert_array_equal(
            idx.ravel(), model.classify_reference(queries)
        )


class TestKNN:
    def test_build_pads(self):
        ds = synthetic_pneumonia(n_train=30, n_test=4)
        knn = build_knn(ds, k=3, feature_multiple=64, row_multiple=16)
        assert knn.patterns % 16 == 0
        assert knn.features % 64 == 0
        assert knn.n_valid == 30

    def test_vote(self):
        ds = synthetic_pneumonia(n_train=30, n_test=4)
        knn = build_knn(ds, k=3)
        labels = knn.train_y[:5]
        idx = np.arange(5)
        assert knn.vote(idx) == np.bincount(labels).argmax()

    def test_reference_accuracy(self):
        ds = synthetic_pneumonia(n_train=128, n_test=32)
        knn = build_knn(ds, k=5, feature_multiple=32, row_multiple=32)
        acc = (knn.classify_reference(ds.test_x) == ds.test_y).mean()
        assert acc > 0.7

    def test_cam_matches_reference(self):
        ds = synthetic_pneumonia(n_train=60, n_test=8)
        knn = build_knn(ds, k=3, feature_multiple=32, row_multiple=32)
        spec = paper_spec(rows=32, cols=32, cam_type="acam")
        km, ex = knn.kernel()
        kernel = C4CAMCompiler(spec).compile(km, ex)
        queries = pad_features(ds.test_x, 32)
        for i in range(4):
            _v, idx = kernel(queries[i])
            assert knn.vote(idx) == knn.classify_reference(
                ds.test_x[i : i + 1]
            )[0]


class TestGpuBaseline:
    def test_batching_amortizes_overhead(self):
        g = QUADRO_RTX_6000
        assert g.query_latency_ns(10, 8192, batch=1) > \
            g.query_latency_ns(10, 8192, batch=64)

    def test_energy_proportional_to_time(self):
        g = QUADRO_RTX_6000
        t = g.batch_time_s(10, 8192, 64) / 64
        assert g.query_energy_pj(10, 8192, 64) == pytest.approx(
            g.sustained_power_w * t * 1e12
        )

    def test_memory_bound_regime(self):
        g = GpuModel(launch_overhead_s=0.0)
        # Huge data, tiny compute: time tracks bytes/bandwidth.
        t = g.batch_time_s(10, 1 << 20, 1)
        data = (10 * (1 << 20) + (1 << 20) + 2 * 10) * 4
        assert t == pytest.approx(data / g.mem_bandwidth)

    def test_run_similarity_functional(self, rng):
        stored = rng.standard_normal((10, 64)).astype(np.float32)
        queries = rng.standard_normal((4, 64)).astype(np.float32)
        values, idx, t_ns, e_pj = QUADRO_RTX_6000.run_similarity(
            stored, queries, 1, True
        )
        expected = (queries @ stored.T).argmax(axis=1)
        np.testing.assert_array_equal(idx.ravel(), expected)
        assert t_ns > 0 and e_pj > 0

    def test_end_to_end_ratio_decade(self):
        """Paper §IV-B: 48× latency, 46.8× energy — same decade here."""
        from repro.arch.technology import FEFET_45NM

        gpu_lat = QUADRO_RTX_6000.query_latency_ns(10, 8192)
        gpu_energy = QUADRO_RTX_6000.query_energy_pj(10, 8192)
        cam_lat = 12.0 + FEFET_45NM.t_system_per_query
        cam_energy = 850.0 + FEFET_45NM.e_system_per_query
        assert 15 < gpu_lat / cam_lat < 150
        assert 15 < gpu_energy / cam_energy < 150


class TestManualBaseline:
    def test_matches_functionally(self, rng):
        stored = rng.choice([-1.0, 1.0], (10, 512)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 512)).astype(np.float32)
        spec = validation_spec(cols=32)
        res = run_manual_similarity(stored, queries, spec, k=1,
                                    metric="dot", largest=True)
        expected = (queries @ stored.T).argmax(axis=1)
        np.testing.assert_array_equal(res.indices.ravel(), expected)

    def test_deviation_vs_compiler_small(self, dot_kernel, rng):
        """Fig. 7: compiler output within a few % of the manual design."""
        stored = rng.choice([-1.0, 1.0], (10, 1024)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (2, 1024)).astype(np.float32)
        spec = validation_spec(cols=64)
        kernel = C4CAMCompiler(spec).compile(
            dot_kernel(stored, k=1, largest=True),
            [placeholder(queries.shape)],
        )
        kernel(queries)
        compiled = kernel.last_report
        manual = run_manual_similarity(stored, queries, spec, k=1,
                                       metric="dot", largest=True).report
        lat_dev = abs(manual.query_latency_ns - compiled.query_latency_ns) \
            / compiled.query_latency_ns
        en_dev = abs(manual.energy.query_total - compiled.energy.query_total) \
            / compiled.energy.query_total
        assert lat_dev < 0.15
        assert en_dev < 0.15
