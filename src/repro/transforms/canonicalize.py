"""Canonicalization and common-subexpression elimination.

Generic cleanups that run between the main C4CAM passes:

* fold ``transpose(transpose(x))`` with matching dims to ``x``
  (torch and cim dialects);
* fold integer arithmetic on ``arith.constant`` operands;
* erase side-effect-free ops whose results are unused;
* CSE: deduplicate structurally identical pure ops within a block.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dialects import arith as arith_d
from repro.ir.operation import Operation
from repro.passes.pass_manager import ModulePass
from repro.passes.rewrite import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    erase_dead_ops,
)


class FoldDoubleTranspose(RewritePattern):
    """``transpose(transpose(x, a, b), a, b) -> x`` (any dialect)."""

    TRANSPOSE_NAMES = ("torch.aten.transpose.int", "cim.transpose")

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name not in self.TRANSPOSE_NAMES:
            return False
        inner = getattr(op.operands[0], "op", None)
        if inner is None or inner.name != op.name:
            return False
        if (
            op.attributes.get("dim0") != inner.attributes.get("dim0")
            or op.attributes.get("dim1") != inner.attributes.get("dim1")
        ):
            return False
        source = inner.operands[0]
        if source.type != op.result.type:
            return False
        rewriter.replace_op(op, [source])
        return True


_FOLDABLE = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: a // b if b else None,
    "arith.remsi": lambda a, b: a % b if b else None,
    "arith.minsi": min,
}


class FoldConstantArith(RewritePattern):
    """Fold integer arithmetic whose operands are both constants."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        fold = _FOLDABLE.get(op.name)
        if fold is None:
            return False
        defs = [getattr(v, "op", None) for v in op.operands]
        if not all(isinstance(d, arith_d.ConstantOp) for d in defs):
            return False
        value = fold(defs[0].value, defs[1].value)
        if value is None:
            return False
        folded = rewriter.create(
            arith_d.ConstantOp, int(value), op.result.type
        )
        rewriter.replace_op(op, [folded.result])
        return True


class CanonicalizePass(ModulePass):
    """Apply folding patterns to a fixed point, then sweep dead ops."""

    NAME = "canonicalize"

    def run(self, module) -> None:
        apply_patterns_greedily(
            module, [FoldDoubleTranspose(), FoldConstantArith()]
        )
        erase_dead_ops(module)


def _cse_key(op: Operation) -> Tuple:
    """Structural identity of a pure op (name, operands, attrs, types)."""
    return (
        op.name,
        tuple(id(v) for v in op.operands),
        tuple(sorted((k, str(v)) for k, v in op.attributes.items())),
        tuple(str(r.type) for r in op.results),
    )


class CSEPass(ModulePass):
    """Deduplicate identical side-effect-free ops within each block.

    Conservative: ops with regions, side effects or terminators are never
    merged; blocks are processed independently (no cross-block motion).
    """

    NAME = "cse"

    def run(self, module) -> None:
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    self._run_on_block(block)

    def _run_on_block(self, block) -> None:
        seen: Dict[Tuple, Operation] = {}
        for op in list(block.operations):
            if op.HAS_SIDE_EFFECTS or op.IS_TERMINATOR or op.regions:
                continue
            if not op.results:
                continue
            key = _cse_key(op)
            original = seen.get(key)
            if original is None:
                seen[key] = op
            else:
                op.replace_with(list(original.results))
