"""``tensor`` dialect: value-semantics tensor manipulation.

Used by the ``cim`` partitioning pass to slice operands (paper Fig. 5d:
``tensor.extract_slice``) and to materialise accumulators.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import ArrayAttr, IntegerAttr
from repro.ir.operation import Operation, register_op
from repro.ir.types import TensorType
from repro.ir.value import Value


def _int_array(values: Sequence[int]) -> ArrayAttr:
    return ArrayAttr([IntegerAttr(int(v)) for v in values])


def _as_ints(attr: ArrayAttr) -> list:
    return [e.value for e in attr]


@register_op
class EmptyOp(Operation):
    """Materialise an uninitialised tensor of a static shape."""

    OP_NAME = "tensor.empty"

    def __init__(self, result_type: TensorType):
        super().__init__(result_types=[result_type])


@register_op
class SplatOp(Operation):
    """A tensor filled with one scalar value (used for accumulator init)."""

    OP_NAME = "tensor.splat"

    def __init__(self, scalar: Value, result_type: TensorType):
        super().__init__(operands=[scalar], result_types=[result_type])


@register_op
class ExtractSliceOp(Operation):
    """Extract a statically-sized slice: offsets/sizes/strides attributes.

    Mirrors ``tensor.extract_slice %t[offsets][sizes][strides]`` with the
    restriction that all parameters are static (which is all the
    partitioning pass produces; dynamic offsets use ``offset_operands``).
    """

    OP_NAME = "tensor.extract_slice"

    def __init__(
        self,
        source: Value,
        offsets: Sequence[int],
        sizes: Sequence[int],
        strides: Sequence[int] = None,
        offset_operands: Sequence[Value] = (),
    ):
        src_type = source.type
        if not isinstance(src_type, TensorType):
            raise ValueError("extract_slice source must be a tensor")
        strides = list(strides) if strides is not None else [1] * len(sizes)
        result_type = TensorType(list(sizes), src_type.element_type)
        super().__init__(
            operands=[source, *offset_operands],
            result_types=[result_type],
            attributes={
                "static_offsets": _int_array(offsets),
                "static_sizes": _int_array(sizes),
                "static_strides": _int_array(strides),
            },
        )

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def offsets(self) -> list:
        return _as_ints(self.attributes["static_offsets"])

    @property
    def sizes(self) -> list:
        return _as_ints(self.attributes["static_sizes"])

    @property
    def strides(self) -> list:
        return _as_ints(self.attributes["static_strides"])


@register_op
class InsertSliceOp(Operation):
    """Insert a tensor into a larger tensor at a static offset."""

    OP_NAME = "tensor.insert_slice"

    def __init__(
        self,
        source: Value,
        dest: Value,
        offsets: Sequence[int],
        offset_operands: Sequence[Value] = (),
    ):
        super().__init__(
            operands=[source, dest, *offset_operands],
            result_types=[dest.type],
            attributes={"static_offsets": _int_array(offsets)},
        )

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def dest(self) -> Value:
        return self.operands[1]

    @property
    def offsets(self) -> list:
        return _as_ints(self.attributes["static_offsets"])


@register_op
class DimOp(Operation):
    """The size of one (static) dimension as an ``index`` value."""

    OP_NAME = "tensor.dim"

    def __init__(self, source: Value, dim: int):
        from repro.ir.types import index

        super().__init__(
            operands=[source],
            result_types=[index],
            attributes={"dim": IntegerAttr(dim)},
        )

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value
