"""Blocks and regions: the nesting structure of the IR.

A :class:`Region` belongs to an operation and holds an ordered list of
:class:`Block`\\ s; a block holds typed arguments and an ordered list of
operations.  This mirrors MLIR's structure and is what enables progressive
lowering: ``cim.execute`` bodies, ``scf.for`` loops and function bodies are
all just regions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from .types import Type
from .value import BlockArgument

if TYPE_CHECKING:  # pragma: no cover
    from .operation import Operation


class Block:
    """A straight-line sequence of operations with typed arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.arguments: List[BlockArgument] = [
            BlockArgument(self, i, t) for i, t in enumerate(arg_types)
        ]
        self.operations: List["Operation"] = []
        self.parent_region: Optional["Region"] = None

    # ------------------------------------------------------------ arguments
    def add_argument(self, type: Type) -> BlockArgument:
        """Append a new block argument of ``type`` and return it."""
        arg = BlockArgument(self, len(self.arguments), type)
        self.arguments.append(arg)
        return arg

    # ----------------------------------------------------------- op editing
    def append(self, op: "Operation") -> "Operation":
        """Add ``op`` at the end of the block."""
        self._adopt(op)
        self.operations.append(op)
        return op

    def insert_before(self, anchor: "Operation", op: "Operation") -> None:
        """Insert ``op`` immediately before ``anchor`` (must be in block)."""
        self._adopt(op)
        self.operations.insert(self._index_of(anchor), op)

    def insert_after(self, anchor: "Operation", op: "Operation") -> None:
        """Insert ``op`` immediately after ``anchor`` (must be in block)."""
        self._adopt(op)
        self.operations.insert(self._index_of(anchor) + 1, op)

    def _adopt(self, op: "Operation") -> None:
        if op.parent_block is not None:
            raise RuntimeError(
                f"op {op.name} already belongs to a block; detach it first"
            )
        op.parent_block = self

    def _remove(self, op: "Operation") -> None:
        self.operations.remove(op)
        op.parent_block = None

    def _index_of(self, op: "Operation") -> int:
        for i, o in enumerate(self.operations):
            if o is op:
                return i
        raise ValueError(f"op {op.name} not in block")

    # ------------------------------------------------------------ accessors
    @property
    def parent_op(self) -> Optional["Operation"]:
        """The operation owning the region containing this block."""
        return None if self.parent_region is None else self.parent_region.parent_op

    @property
    def terminator(self) -> Optional["Operation"]:
        """The trailing terminator op, if the block ends with one."""
        if self.operations and self.operations[-1].IS_TERMINATOR:
            return self.operations[-1]
        return None

    def __iter__(self):
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block args={len(self.arguments)} ops={len(self.operations)}>"


class Region:
    """An ordered list of blocks owned by an operation."""

    def __init__(self, parent_op: Optional["Operation"] = None):
        self.blocks: List[Block] = []
        self.parent_op = parent_op

    def append(self, block: Block) -> Block:
        """Add ``block`` at the end of the region."""
        if block.parent_region is not None:
            raise RuntimeError("block already belongs to a region")
        block.parent_region = self
        self.blocks.append(block)
        return block

    @property
    def empty(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> Block:
        """The first block; raises when the region is empty."""
        if not self.blocks:
            raise ValueError("region has no blocks")
        return self.blocks[0]

    def __iter__(self) -> Iterable[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Region blocks={len(self.blocks)}>"
