"""GPU comparison (paper §IV-B) — end-to-end CAM system vs Quadro RTX 6000.

Paper result: 48× execution-time improvement and 46.8× energy improvement
for HDC/MNIST, with "CAMs contributing minimally to the overall energy
consumption in their CIM system".  We assert the same decade and the
CAM-share observation.
"""

import pytest

from repro.arch import validation_spec
from repro.arch.technology import FEFET_45NM
from repro.baselines import QUADRO_RTX_6000

from harness import print_series


@pytest.fixture(scope="module")
def comparison(hdc_1bit):
    spec = validation_spec(64)
    report = hdc_1bit.run(spec)
    cam_lat = report.query_latency_ns + FEFET_45NM.t_system_per_query
    cam_energy = report.energy.query_total + FEFET_45NM.e_system_per_query
    gpu_lat = QUADRO_RTX_6000.query_latency_ns(
        hdc_1bit.patterns, hdc_1bit.dimensions
    )
    gpu_energy = QUADRO_RTX_6000.query_energy_pj(
        hdc_1bit.patterns, hdc_1bit.dimensions
    )
    return dict(
        cam_lat=cam_lat, cam_energy=cam_energy,
        gpu_lat=gpu_lat, gpu_energy=gpu_energy,
        cam_share=report.energy.query_total / cam_energy,
    )


def test_gpu_comparison_table(comparison):
    c = comparison
    print_series(
        "GPU comparison (per query, end to end)",
        ["latency ns", "energy pJ"],
        [
            ("GPU RTX 6000", [c["gpu_lat"], c["gpu_energy"]]),
            ("CAM system", [c["cam_lat"], c["cam_energy"]]),
            ("improvement", [c["gpu_lat"] / c["cam_lat"],
                             c["gpu_energy"] / c["cam_energy"]]),
        ],
    )
    print("(paper: 48x execution time, 46.8x energy)")
    # Same decade as the paper's 48x / 46.8x.
    assert 15 <= c["gpu_lat"] / c["cam_lat"] <= 150
    assert 15 <= c["gpu_energy"] / c["cam_energy"] <= 150


def test_latency_and_energy_improvements_similar(comparison):
    """Paper: the two ratios nearly coincide (48 vs 46.8)."""
    c = comparison
    ratio = (c["gpu_lat"] / c["cam_lat"]) / (c["gpu_energy"] / c["cam_energy"])
    assert 0.3 < ratio < 3.0


def test_cam_contributes_minimally(comparison):
    """CAM arrays are a small share of CIM-system energy (paper §IV-B)."""
    assert comparison["cam_share"] < 0.05


def test_bench_gpu_model(benchmark, hdc_1bit):
    benchmark.pedantic(
        lambda: QUADRO_RTX_6000.run_similarity(
            hdc_1bit.model.prototypes, hdc_1bit.queries, 1, True
        ),
        rounds=5, iterations=1,
    )
