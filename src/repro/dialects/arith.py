"""``arith`` dialect: constants, integer/float arithmetic and comparisons.

Only the operations the C4CAM pipeline and the host loops path need are
defined.  ``arith.sqrt`` stands in for MLIR's ``math.sqrt`` so the Euclidean
norm lowering does not need a separate dialect.
"""

from __future__ import annotations

from typing import Union

from repro.ir.attributes import FloatAttr, IntegerAttr, StringAttr
from repro.ir.operation import Operation, register_op
from repro.ir.types import FloatType, IndexType, IntegerType, Type, f32, i1, index
from repro.ir.value import Value


@register_op
class ConstantOp(Operation):
    """An integer, index or float constant.

    ``value`` may be a Python int/float; the result type defaults to
    ``index`` for ints and ``f32`` for floats and can be overridden.
    """

    OP_NAME = "arith.constant"

    def __init__(self, value: Union[int, float], type: Type = None):
        if type is None:
            type = index if isinstance(value, int) else f32
        if isinstance(type, (IndexType, IntegerType)):
            attr = IntegerAttr(int(value))
        elif isinstance(type, FloatType):
            attr = FloatAttr(float(value), type.width)
        else:
            raise ValueError(f"unsupported constant type: {type}")
        super().__init__(result_types=[type], attributes={"value": attr})

    @property
    def value(self) -> Union[int, float]:
        return self.attributes["value"].value


class _BinaryOp(Operation):
    """Base for two-operand, one-result arithmetic ops."""

    def __init__(self, lhs: Value, rhs: Value):
        if lhs.type != rhs.type:
            raise ValueError(
                f"{type(self).OP_NAME}: operand types differ "
                f"({lhs.type} vs {rhs.type})"
            )
        super().__init__(operands=[lhs, rhs], result_types=[lhs.type])

    def verify(self) -> None:
        if self.num_operands != 2 or self.num_results != 1:
            raise ValueError(f"{self.name}: expects two operands, one result")


@register_op
class AddIOp(_BinaryOp):
    OP_NAME = "arith.addi"


@register_op
class SubIOp(_BinaryOp):
    OP_NAME = "arith.subi"


@register_op
class MulIOp(_BinaryOp):
    OP_NAME = "arith.muli"


@register_op
class DivSIOp(_BinaryOp):
    OP_NAME = "arith.divsi"


@register_op
class RemSIOp(_BinaryOp):
    OP_NAME = "arith.remsi"


@register_op
class MinSIOp(_BinaryOp):
    OP_NAME = "arith.minsi"


@register_op
class AddFOp(_BinaryOp):
    OP_NAME = "arith.addf"


@register_op
class SubFOp(_BinaryOp):
    OP_NAME = "arith.subf"


@register_op
class MulFOp(_BinaryOp):
    OP_NAME = "arith.mulf"


@register_op
class DivFOp(_BinaryOp):
    OP_NAME = "arith.divf"


@register_op
class SqrtOp(Operation):
    """Elementwise square root (stand-in for ``math.sqrt``)."""

    OP_NAME = "arith.sqrt"

    def __init__(self, operand: Value):
        super().__init__(operands=[operand], result_types=[operand.type])


@register_op
class CmpIOp(Operation):
    """Integer comparison; ``predicate`` is one of eq/ne/slt/sle/sgt/sge."""

    OP_NAME = "arith.cmpi"
    PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in self.PREDICATES:
            raise ValueError(f"bad cmpi predicate: {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value


@register_op
class SelectOp(Operation):
    """``result = condition ? true_value : false_value``."""

    OP_NAME = "arith.select"

    def __init__(self, condition: Value, true_value: Value, false_value: Value):
        if true_value.type != false_value.type:
            raise ValueError("arith.select: branch types differ")
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )


@register_op
class IndexCastOp(Operation):
    """Cast between ``index`` and integer types."""

    OP_NAME = "arith.index_cast"

    def __init__(self, operand: Value, result_type: Type):
        super().__init__(operands=[operand], result_types=[result_type])
