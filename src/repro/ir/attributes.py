"""Attributes: compile-time constant data attached to operations.

Attributes are immutable and hashable, mirroring MLIR attribute semantics.
Each attribute knows how to print itself in an MLIR-like spelling and the
module-level :func:`parse_attribute` can read that spelling back.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .types import Type, parse_type


class Attribute:
    """Base class of all attributes."""

    def _key(self) -> tuple:
        return (type(self),)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attribute) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"


class IntegerAttr(Attribute):
    """An integer constant, e.g. ``42 : i64``."""

    def __init__(self, value: int, width: int = 64):
        self.value = int(value)
        self.width = int(width)

    def _key(self) -> tuple:
        return (IntegerAttr, self.value, self.width)

    def __str__(self) -> str:
        return f"{self.value} : i{self.width}"


class FloatAttr(Attribute):
    """A float constant, e.g. ``1.5 : f32``."""

    def __init__(self, value: float, width: int = 64):
        self.value = float(value)
        self.width = int(width)

    def _key(self) -> tuple:
        return (FloatAttr, self.value, self.width)

    def __str__(self) -> str:
        return f"{self.value} : f{self.width}"


class BoolAttr(Attribute):
    """``true`` or ``false``."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self) -> tuple:
        return (BoolAttr, self.value)

    def __str__(self) -> str:
        return "true" if self.value else "false"


class StringAttr(Attribute):
    """A quoted string constant."""

    def __init__(self, value: str):
        self.value = str(value)

    def _key(self) -> tuple:
        return (StringAttr, self.value)

    def __str__(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class TypeAttr(Attribute):
    """Wraps a :class:`~repro.ir.types.Type` as attribute data."""

    def __init__(self, type: Type):
        self.type = type

    def _key(self) -> tuple:
        return (TypeAttr, self.type)

    def __str__(self) -> str:
        return str(self.type)


class ArrayAttr(Attribute):
    """An ordered list of attributes, e.g. ``[1 : i64, 2 : i64]``."""

    def __init__(self, elements: Sequence[Attribute]):
        self.elements: Tuple[Attribute, ...] = tuple(elements)
        for e in self.elements:
            if not isinstance(e, Attribute):
                raise TypeError(f"ArrayAttr element is not an Attribute: {e!r}")

    def _key(self) -> tuple:
        return (ArrayAttr, self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i: int) -> Attribute:
        return self.elements[i]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


class SymbolRefAttr(Attribute):
    """Reference to a symbol (function) by name, e.g. ``@main``."""

    def __init__(self, name: str):
        self.name = str(name)

    def _key(self) -> tuple:
        return (SymbolRefAttr, self.name)

    def __str__(self) -> str:
        return f"@{self.name}"


class UnitAttr(Attribute):
    """Presence-only marker attribute (prints as ``unit``)."""

    def __str__(self) -> str:
        return "unit"


def as_attribute(value) -> Attribute:
    """Coerce a plain Python value to the matching attribute.

    Accepts attributes (returned unchanged), bools, ints, floats, strings,
    types and sequences thereof.
    """
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, float):
        return FloatAttr(value)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, Type):
        return TypeAttr(value)
    if isinstance(value, (list, tuple)):
        return ArrayAttr([as_attribute(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to an Attribute")


def parse_attribute(text: str) -> Attribute:
    """Parse an attribute from its printed spelling."""
    text = text.strip()
    if text == "unit":
        return UnitAttr()
    if text in ("true", "false"):
        return BoolAttr(text == "true")
    if text.startswith("@"):
        return SymbolRefAttr(text[1:])
    if text.startswith('"') and text.endswith('"'):
        body = text[1:-1]
        return StringAttr(body.replace('\\"', '"').replace("\\\\", "\\"))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return ArrayAttr([])
        return ArrayAttr([parse_attribute(p) for p in _split_commas(inner)])
    if " : " in text:
        value_str, type_str = text.rsplit(" : ", 1)
        ty = parse_type(type_str)
        from .types import FloatType, IntegerType

        if isinstance(ty, IntegerType):
            return IntegerAttr(int(value_str), ty.width)
        if isinstance(ty, FloatType):
            return FloatAttr(float(value_str), ty.width)
        raise ValueError(f"unsupported typed attribute: {text!r}")
    try:
        return parse_type(text) and TypeAttr(parse_type(text))
    except ValueError:
        pass
    raise ValueError(f"cannot parse attribute: {text!r}")


def _split_commas(text: str) -> list:
    """Split at top-level commas (ignores commas inside brackets/strings)."""
    parts, depth, start, in_str = [], 0, 0, False
    i = 0
    while i < len(text):
        c = text[i]
        if in_str:
            if c == "\\":
                i += 1
            elif c == '"':
                in_str = False
        elif c == '"':
            in_str = True
        elif c in "[(<{":
            depth += 1
        elif c in "])}" or (c == ">" and (i == 0 or text[i - 1] != "-")):
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
        i += 1
    if text[start:].strip():
        parts.append(text[start:])
    return [p.strip() for p in parts]
