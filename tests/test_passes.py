"""Pass manager and pattern-rewrite driver tests."""

import pytest

from repro.dialects import arith as arith_d
from repro.dialects import func as func_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType
from repro.passes.pass_manager import (
    FunctionPass,
    LambdaPass,
    Pass,
    PassError,
    PassManager,
)
from repro.passes.rewrite import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    erase_dead_ops,
)


def make_module():
    m = ModuleOp()
    f = func_d.FuncOp("p", FunctionType([], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    c1 = b.create(arith_d.ConstantOp, 1)
    c2 = b.create(arith_d.ConstantOp, 2)
    b.create(arith_d.AddIOp, c1.result, c2.result)
    b.create(func_d.ReturnOp, [])
    return m, f


class TestPassManager:
    def test_runs_in_order(self):
        order = []
        pm = PassManager([
            LambdaPass(lambda m: order.append("a"), "a"),
            LambdaPass(lambda m: order.append("b"), "b"),
        ])
        pm.run(ModuleOp())
        assert order == ["a", "b"]

    def test_statistics_collected(self):
        pm = PassManager([LambdaPass(lambda m: None, "noop")])
        pm.run(ModuleOp())
        assert pm.statistics[0]["pass"] == "noop"
        assert pm.statistics[0]["seconds"] >= 0

    def test_failure_wrapped(self):
        def boom(m):
            raise ValueError("boom")

        pm = PassManager([LambdaPass(boom, "boom")])
        with pytest.raises(PassError, match="boom"):
            pm.run(ModuleOp())

    def test_verify_each_catches_broken_ir(self):
        def breaker(module):
            f = next(module.functions())
            # Create a dangling use: operand defined nowhere.
            orphan = arith_d.ConstantOp(1)
            f.body.insert_before(
                f.body.operations[-1], arith_d.AddIOp(orphan.result, orphan.result)
            )

        m, _f = make_module()
        pm = PassManager([LambdaPass(breaker, "breaker")])
        with pytest.raises(PassError, match="verification failed"):
            pm.run(m)

    def test_verify_each_off(self):
        m, _f = make_module()
        pm = PassManager([LambdaPass(lambda m: None)], verify_each=False)
        pm.run(m)  # should not raise

    def test_function_pass_visits_each_function(self):
        seen = []

        class P(FunctionPass):
            def run_on_function(self, func):
                seen.append(func.sym_name)

        m = ModuleOp()
        m.append(func_d.FuncOp("a", FunctionType([], [])))
        m.append(func_d.FuncOp("b", FunctionType([], [])))
        PassManager([P()], verify_each=False).run(m)
        assert seen == ["a", "b"]

    def test_describe(self):
        pm = PassManager([LambdaPass(lambda m: None, "x")])
        assert pm.describe() == "x"

    def test_base_pass_abstract(self):
        with pytest.raises(NotImplementedError):
            Pass().run(ModuleOp())


class FoldAddOfConstants(RewritePattern):
    """addi(c1, c2) -> constant(c1+c2)."""

    OP_NAME = "arith.addi"

    def match_and_rewrite(self, op, rewriter: PatternRewriter):
        a, b = op.operands
        ops = (getattr(a, "op", None), getattr(b, "op", None))
        if not all(isinstance(o, arith_d.ConstantOp) for o in ops):
            return False
        folded = rewriter.create(
            arith_d.ConstantOp, ops[0].value + ops[1].value
        )
        rewriter.replace_op(op, [folded.result])
        return True


class TestGreedyRewriter:
    def test_fold_applies(self):
        m, f = make_module()
        changed = apply_patterns_greedily(m, [FoldAddOfConstants()])
        assert changed
        assert not any(op.name == "arith.addi" for op in m.walk())

    def test_fixed_point_reached(self):
        m, f = make_module()
        apply_patterns_greedily(m, [FoldAddOfConstants()])
        changed = apply_patterns_greedily(m, [FoldAddOfConstants()])
        assert not changed

    def test_non_converging_pattern_raises(self):
        class Churn(RewritePattern):
            OP_NAME = "arith.constant"

            def match_and_rewrite(self, op, rewriter):
                new = rewriter.create(arith_d.ConstantOp, op.value)
                rewriter.replace_op(op, [new.result])
                return True

        m, _ = make_module()
        with pytest.raises(RuntimeError, match="converge"):
            apply_patterns_greedily(m, [Churn()], max_iterations=4)

    def test_benefit_ordering(self):
        applied = []

        class A(RewritePattern):
            BENEFIT = 1

            def match_and_rewrite(self, op, rewriter):
                applied.append("low") if op.name == "arith.addi" else None
                return False

        class B(RewritePattern):
            BENEFIT = 5

            def match_and_rewrite(self, op, rewriter):
                applied.append("high") if op.name == "arith.addi" else None
                return False

        m, _ = make_module()
        apply_patterns_greedily(m, [A(), B()])
        assert applied[0] == "high"


class TestDeadOpElimination:
    def test_erases_unused_pure_ops(self):
        m, f = make_module()
        add = [op for op in m.walk() if op.name == "arith.addi"][0]
        add.erase()
        # Constants now unused.
        erased = erase_dead_ops(m)
        assert erased == 2
        assert len(f.body.operations) == 1  # only the return

    def test_keeps_used_ops(self):
        from repro.dialects import memref as memref_d
        from repro.ir.types import MemRefType, f32

        m = ModuleOp()
        f = func_d.FuncOp("q", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        buf = b.create(memref_d.AllocOp, MemRefType([4], f32))
        b.create(memref_d.FillOp, buf.result, 1.0)  # side effect keeps chain
        b.create(func_d.ReturnOp, [])
        erased = erase_dead_ops(m)
        assert erased == 0
        assert any(op.name == "memref.alloc" for op in m.walk())

    def test_cascading_erasure(self):
        m, f = make_module()
        # Body is c1, c2, add(unused), return: the add dies, then both
        # constants become unused and die in later sweeps.
        erased = erase_dead_ops(m)
        assert erased == 3
        assert [op.name for op in f.body.operations] == ["func.return"]
