"""Recommender system on CAM — the iMARS-style two-stage pipeline.

Paper §II-C motivates the bank-level hierarchy with recommender systems:
"RecSys can profit from CAMs in both filtering and ranking stages, where
each stage executes different tasks on different banks in parallel".

This module composes the two primitives this repository provides:

* **filtering** — threshold Hamming match of the user's context tags
  against per-item filter signatures (a :class:`PatternMatcher` on its own
  banks);
* **ranking** — dot-product similarity of the user embedding against the
  *filtered* item embeddings (a compiled C4CAM kernel on separate banks).

Because the stages occupy disjoint banks, a stream of requests pipelines:
steady-state throughput is set by the slower stage, while a single
request's latency is the sum.

The pipeline is *heterogeneous* (paper conclusion: "the architecture
specification ... also enables the specification of heterogeneous
systems"): filtering runs on binary TCAM banks, ranking on multi-bit MCAM
banks whose native dot-product search handles real-valued embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

import repro.frontend.torch_api as torch
from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder

from .matching import PatternMatcher


@dataclass
class Recommendation:
    """Result of one request."""

    item_ids: np.ndarray       # top-k ranked item ids (global)
    scores: np.ndarray
    candidates: int            # how many items survived filtering
    latency_ns: float          # end-to-end (filter + rank)
    throughput_interval_ns: float  # pipelined steady-state interval


class RecSysPipeline:
    """Two-stage CAM recommender: filter on one machine, rank on another."""

    def __init__(
        self,
        item_filters: np.ndarray,     # items × tag-bits (binary)
        item_embeddings: np.ndarray,  # items × dims
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
        top_k: int = 4,
    ):
        if len(item_filters) != len(item_embeddings):
            raise ValueError("filters and embeddings must align per item")
        self.item_filters = np.asarray(item_filters, dtype=np.float64)
        self.item_embeddings = np.asarray(item_embeddings, dtype=np.float32)
        from dataclasses import replace

        self.spec = spec
        self.tech = tech
        self.top_k = top_k
        # Stage 1 (TCAM banks): exact/threshold tag matching.
        filter_spec = replace(spec, cam_type="tcam", bits_per_cell=1)
        self.matcher = PatternMatcher(self.item_filters, filter_spec, tech)
        # Stage 2 (MCAM banks): native dot product on real embeddings.
        self.rank_spec = replace(spec, cam_type="mcam", bits_per_cell=2)
        # Stage 2: compiled similarity kernel (bank set B); its cached
        # QuerySession programs the embeddings once and serves every
        # recommend() call from the live machine.
        self._rank_kernel = None

    @property
    def n_items(self) -> int:
        return self.item_filters.shape[0]

    def _ranking_kernel(self):
        if self._rank_kernel is not None:
            return self._rank_kernel
        embeddings = self.item_embeddings
        k = min(self.top_k, len(embeddings))

        class Ranker(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(embeddings)

            def forward(self, user):
                others = self.weight.transpose(-2, -1)
                scores = torch.matmul(user, others)
                values, indices = torch.ops.aten.topk(scores, k, largest=True)
                return values, indices

        compiler = C4CAMCompiler(self.rank_spec, self.tech)
        self._rank_kernel = compiler.compile(
            Ranker(), [placeholder((1, embeddings.shape[1]))]
        )
        return self._rank_kernel

    def recommend(
        self, context_tags: np.ndarray, user_embedding: np.ndarray,
        filter_threshold: float = 0.0,
    ) -> Recommendation:
        """Run one request through filter → rank.

        Items whose filter signature is farther than ``filter_threshold``
        from the context are excluded from the ranking result.
        """
        match = self.matcher.lookup(context_tags, filter_threshold)
        filter_report = self.matcher.report()
        filter_lat = filter_report.per_query_latency_ns

        kernel = self._ranking_kernel()
        user = np.asarray(user_embedding, dtype=np.float32).reshape(1, -1)
        values, indices = kernel(user)
        rank_report = kernel.last_report
        rank_lat = rank_report.per_query_latency_ns

        allowed = set(int(i) for i in match.indices)
        ranked = [
            (int(i), float(v))
            for i, v in zip(indices.ravel(), values.ravel())
            if int(i) in allowed
        ]
        ids = np.array([i for i, _v in ranked], dtype=np.int64)
        scores = np.array([v for _i, v in ranked])
        return Recommendation(
            item_ids=ids,
            scores=scores,
            candidates=len(allowed),
            latency_ns=filter_lat + rank_lat,
            throughput_interval_ns=max(filter_lat, rank_lat),
        )

    def banks_used(self) -> Tuple[int, int]:
        """(filter banks, ranking banks) — disjoint by construction."""
        rank_banks = 0
        if self._rank_kernel is not None and self._rank_kernel.last_report:
            rank_banks = self._rank_kernel.last_report.banks_used
        return self.matcher.machine.banks_used, rank_banks
