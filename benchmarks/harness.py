"""Shared benchmark harness: workloads, runners and result caching.

Every benchmark regenerates one table or figure of the paper's evaluation
(§IV).  Absolute numbers come from our simulator calibration; the asserted
*shapes* (who wins, rough factors, crossovers) are the paper's claims.
"""


from repro.apps import synthetic_mnist, synthetic_pneumonia, train_hdc
from repro.arch import ArchSpec
from repro.compiler import C4CAMCompiler

#: MNIST test-set size: per-query metrics extrapolate to the full set.
MNIST_QUERIES = 10_000


class HdcWorkload:
    """The HDC/MNIST similarity workload (8k dims, 10 classes)."""

    def __init__(self, bits: int = 1, dimensions: int = 8192):
        dataset = synthetic_mnist(n_train=256, n_test=16)
        self.model = train_hdc(dataset, dimensions=dimensions, bits=bits)
        self.queries = self.model.encode_queries(dataset.test_x[:1])
        self.bits = bits

    @property
    def patterns(self):
        return self.model.n_classes

    @property
    def dimensions(self):
        return self.model.dimensions

    def run(self, spec: ArchSpec):
        """Compile and execute one query; returns the ExecutionReport."""
        kernel_model, example = self.model.kernel(n_queries=1)
        kernel = C4CAMCompiler(spec).compile(kernel_model, example)
        kernel(self.queries)
        return kernel.last_report


class KnnWorkload:
    """The KNN/Pneumonia workload (1024 patterns × 1024 features)."""

    def __init__(self, patterns: int = 1024, features: int = 1024):
        from repro.apps import build_knn, pad_features

        dataset = synthetic_pneumonia(n_train=patterns - 8, n_test=4)
        self.knn = build_knn(
            dataset, k=5, feature_multiple=features, row_multiple=patterns
        )
        self.query = pad_features(dataset.test_x, features)[0]

    def run(self, spec: ArchSpec):
        kernel_model, example = self.knn.kernel()
        kernel = C4CAMCompiler(spec).compile(kernel_model, example)
        kernel(self.query)
        return kernel.last_report



def print_series(title, columns, rows):
    """Print a paper-style table: rows of (label, values...)."""
    print(f"\n=== {title} ===")
    header = f"{'':>20}" + "".join(f"{c:>12}" for c in columns)
    print(header)
    for label, values in rows:
        cells = "".join(
            f"{v:>12.4g}" if isinstance(v, float) else f"{v:>12}"
            for v in values
        )
        print(f"{label:>20}" + cells)
