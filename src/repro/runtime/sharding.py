"""Sharded multi-machine sessions: one stored set, N programmed machines.

A single CAM machine caps out when the stored-pattern matrix needs more
banks than the :class:`~repro.arch.spec.ArchSpec` provides.  The paper's
answer to capacity is tiling — banks/mats/subarrays inside one machine —
and this module extends the same idea *across* machines, the way
far-memory serving systems (AMU's accessibility graphs, Atlas' hybrid
data plane) scale a fast single-device path into a serving deployment:

* **row sharding** — the ``P×D`` stored matrix splits into contiguous
  row ranges, one per shard.  Each shard is an independently compiled
  and programmed machine: its own lowered module, partition plan and
  :class:`~repro.runtime.session.QuerySession`;
* **fan-out** — a query batch is broadcast to every shard and streamed
  through PR 1's vectorized ``run_batch`` on each;
* **merge** — per-shard top-k candidates (local indices shifted by the
  shard's row offset) are re-ranked by a host-side selection into the
  global top-k.

Functionally the merge is *bitwise identical* to one oversized machine:
match-line scores are row-local (a row's score never depends on other
stored rows), each shard keeps its ``min(k, rows)`` best with the same
stable lowest-index tie-break the single-machine peripheral uses
(:func:`~repro.simulator.peripherals.best_match_batch`), and candidates
are concatenated in row-offset order — so equal scores still resolve to
the lowest global row index.  The re-rank runs on the shards' full-
precision *unclamped* (float64) scores, not the float32 outputs; a
winner-take-all sensing window (``tech.wta_window``) is applied once at
the merge against the candidate-set winner — the global winner, since
every shard keeps its own best — matching the single-machine clamp.

Timing follows the deployment model: shards are separate machines, so
programming and querying proceed in parallel — batch latency is the
**max over shards** plus the host merge hop (a top-k over ``Σ min(k,
rows_i)`` candidates); setup latency is the max over shards.  Energy,
allocation counts and chip area are **summed** across shards (N machines
really do burn N machines' worth of energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import TechnologyModel
from repro.dialects import arith as arith_d
from repro.dialects import cim as cim_d
from repro.dialects import func as func_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, TensorType, f32, i64, index
from repro.passes.pass_manager import PassManager
from repro.simulator.metrics import (
    EnergyBreakdown,
    ExecutionReport,
    aggregate_reports,
)
from repro.simulator.peripherals import best_match_batch
from repro.transforms.cim_to_cam import CimToCamPass
from repro.transforms.optimizations import MappingConfig, resolve_optimization
from repro.transforms.partitioning import (
    CapacityError,
    CimPartitionPass,
    compute_partition_plan,
    machine_row_capacity,
)

from .backend import ExecutionBackend, SessionError
from .machineview import MachineGroupView
from .session import QuerySession


# --------------------------------------------------------------- planning
def shard_sizes(patterns: int, num_shards: int) -> List[int]:
    """Balanced contiguous row counts: ``ceil`` rows first, never empty."""
    if not 1 <= num_shards <= patterns:
        raise ValueError(
            f"cannot split {patterns} stored rows into {num_shards} shards"
        )
    base, extra = divmod(patterns, num_shards)
    return [base + 1] * extra + [base] * (num_shards - extra)


def plan_shard_count(
    patterns: int,
    features: int,
    queries: int,
    spec: ArchSpec,
    use_density: bool,
    num_shards: Optional[int] = None,
) -> int:
    """Shard count for a ``patterns×features`` store on ``spec`` machines.

    ``num_shards=None`` auto-sizes: 1 when the store fits one machine,
    otherwise the smallest count whose largest shard fits.  An explicit
    ``num_shards`` is honoured as-is and validated — in particular
    ``num_shards=1`` on an overflowing store raises
    :class:`~repro.transforms.partitioning.CapacityError` (the
    no-silent-truncation guarantee).
    """

    def overflow() -> CapacityError:
        # Always report the *full* store: required_rows/available_rows
        # and the suggested minimum shard count describe the workload,
        # not whichever shard size happened to trip the check.
        return CapacityError(
            compute_partition_plan(
                patterns, features, queries, spec, use_density
            ),
            spec,
            use_density,
        )

    capacity = machine_row_capacity(spec, features, use_density)
    if num_shards is not None:
        if (
            capacity is not None
            and max(shard_sizes(patterns, num_shards)) > capacity
        ):
            raise overflow()
        return num_shards
    if capacity is None or patterns <= capacity:
        return 1
    if capacity == 0:
        # Even one-row shards overflow at this feature width; sharding
        # cannot help.
        raise overflow()
    # The largest balanced shard is ceil(patterns / count), so the
    # smallest fitting count is ceil(patterns / capacity).
    return math.ceil(patterns / capacity)


@dataclass(frozen=True)
class Shard:
    """One machine's slice of the stored set, compiled and ready.

    ``module`` is the shard's fully lowered (cam-dialect) module whose
    single parameter is ``stored`` (the ``rows×features`` row slice);
    ``program`` the query-phase structure its
    :class:`~repro.runtime.session.QuerySession` replays; ``row_offset``
    maps the shard's local pattern indices back to global rows.
    """

    module: ModuleOp
    stored: np.ndarray
    program: object  # QueryProgram
    row_offset: int

    @property
    def rows(self) -> int:
        return self.stored.shape[0]


@dataclass(frozen=True)
class ShardSet:
    """A compiled shard partition of one similarity kernel."""

    shards: Tuple[Shard, ...]
    k: int          # the kernel's global top-k
    patterns: int
    features: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def row_offsets(self) -> List[int]:
        return [shard.row_offset for shard in self.shards]


def _build_shard_module(
    n_queries: int,
    rows: int,
    features: int,
    metric: str,
    k: int,
    largest: bool,
) -> ModuleOp:
    """A minimal cim-level similarity module over one row slice.

    ``forward(queries: Q×D, stored: rows×D) -> (values, indices)`` with a
    single ``cim.execute { cim.similarity }`` block — exactly the shape
    the ``cim-partition`` / ``cim-to-cam`` passes expect, so each shard
    lowers through the standard pipeline and its session measures honest
    structural timing from the loop nest.
    """
    k_eff = min(k, rows)
    query_t = TensorType([n_queries, features], f32)
    stored_t = TensorType([rows, features], f32)
    values_t = TensorType([n_queries, k_eff], f32)
    indices_t = TensorType([n_queries, k_eff], i64)

    module = ModuleOp()
    fn = func_d.FuncOp(
        "forward", FunctionType([query_t, stored_t], [values_t, indices_t])
    )
    module.append(fn)
    b = OpBuilder.at_end(fn.body)
    device = b.create(cim_d.AcquireOp).result
    k_const = b.create(arith_d.ConstantOp, k_eff, index).result
    execute = b.create(
        cim_d.ExecuteOp,
        device,
        [fn.arguments[1], fn.arguments[0], k_const],
        [values_t, indices_t],
    )
    body = OpBuilder.at_end(execute.body)
    sim = body.create(
        cim_d.SimilarityOp,
        metric,
        execute.body.arguments[0],
        execute.body.arguments[1],
        execute.body.arguments[2],
        k_static=k_eff,
        largest=largest,
    )
    body.create(cim_d.YieldOp, list(sim.results))
    b.create(cim_d.ReleaseOp, device)
    b.create(func_d.ReturnOp, list(execute.results))
    return module


def build_shard_set(
    stored: np.ndarray,
    n_queries: int,
    metric: str,
    k: int,
    largest: bool,
    spec: ArchSpec,
    config: Optional[MappingConfig] = None,
    num_shards: Optional[int] = None,
) -> ShardSet:
    """Partition ``stored`` into shards and compile each one.

    ``metric``/``largest`` are the *cim-level* similarity semantics (the
    per-shard pipeline re-applies CAM-type legalisation identically for
    every shard).  Raises
    :class:`~repro.transforms.partitioning.CapacityError` when the
    requested shard count still overflows a machine.
    """
    stored = np.atleast_2d(np.asarray(stored))
    patterns, features = stored.shape
    config = config or resolve_optimization(spec)
    count = plan_shard_count(
        patterns, features, n_queries, spec, config.use_density, num_shards
    )
    shards = []
    offset = 0
    for rows in shard_sizes(patterns, count):
        module = _build_shard_module(
            n_queries, rows, features, metric, k, largest
        )
        cam = CimToCamPass(spec, config)
        pm = PassManager()
        pm.add(CimPartitionPass(spec, use_density=config.use_density))
        pm.add(cam)
        pm.run(module)
        shards.append(
            Shard(
                module=module,
                stored=np.ascontiguousarray(stored[offset : offset + rows]),
                program=cam.programs[0],
                row_offset=offset,
            )
        )
        offset += rows
    return ShardSet(
        shards=tuple(shards), k=k, patterns=patterns, features=features
    )


# ---------------------------------------------------------------- sessions
class ShardedSession(ExecutionBackend, MachineGroupView):
    """N live machines serving one similarity kernel's query stream.

    Owns one :class:`~repro.runtime.session.QuerySession` per shard —
    each machine is programmed exactly once with its row slice — and
    merges per-shard top-k results into global rows on
    :meth:`run_batch`.  Device noise decorrelates per shard and per
    batch via one :class:`numpy.random.SeedSequence`, reproducible for a
    fixed seed.

    The object also acts as the *aggregate machine view* consumed by
    :func:`repro.simulator.analysis.utilization` /
    ``format_report`` — ``subarrays_used``/``subarray(i)`` span all
    shard machines and :meth:`chip_area_mm2` sums their silicon.
    """

    def __init__(
        self,
        shard_set: ShardSet,
        spec: ArchSpec,
        tech: TechnologyModel,
        func_name: str = "forward",
        noise_sigma: float = 0.0,
        noise_seed=0,
    ):
        if not shard_set.shards:
            raise SessionError("a sharded session needs at least one shard")
        self.shard_set = shard_set
        self.spec = spec
        self.tech = tech
        self.func_name = func_name
        self.noise_sigma = float(noise_sigma)
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        children = self._noise_seq.spawn(len(shard_set.shards))
        self.sessions = [
            QuerySession(
                shard.module,
                spec,
                tech,
                [shard.stored],
                shard.program,
                func_name=func_name,
                noise_sigma=noise_sigma,
                noise_seed=child,
            )
            for shard, child in zip(shard_set.shards, children)
        ]
        self.k = shard_set.k
        # Post-legalisation sort direction — identical across shards by
        # construction (same spec, same pipeline).
        self.largest = shard_set.shards[0].program.largest
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0

    # ------------------------------------------------------------ topology
    #: Aggregate machine view (:class:`MachineGroupView`): counters and
    #: silicon span every shard machine.
    _group_noun = "shard set"

    @property
    def num_shards(self) -> int:
        return len(self.sessions)

    @property
    def machines(self) -> List:
        """The per-shard :class:`~repro.simulator.machine.CamMachine`\\ s."""
        return [session.machine for session in self.sessions]

    @property
    def row_offsets(self) -> List[int]:
        return self.shard_set.row_offsets

    # ------------------------------------------------------- protocol bits
    def query_width(self, tenant: Optional[str] = None) -> int:
        """The kernel's feature dimension (single-tenant backend)."""
        self._require_no_tenant(tenant)
        return self.shard_set.features

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline: shards program in parallel (setup is a
        max over machines) but every machine's write energy is paid."""
        return ExecutionReport(
            setup_latency_ns=max(
                s.setup_latency_ns for s in self.sessions
            ),
            energy=EnergyBreakdown(
                write=sum(s.setup_energy_pj for s in self.sessions)
            ),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            queries=0,
            spec=self.spec,
        )

    def report(self) -> ExecutionReport:
        """The most recent merged batch report, or the setup baseline
        before any batch ran."""
        return self.last_report or self.setup_report()

    # ------------------------------------------------------------ lifecycle
    def clone(self, noise_seed=None) -> "ShardedSession":
        """An independent replica of the whole shard group.

        Reuses the compiled :class:`ShardSet` (per-shard modules, plans
        and programs) untouched — no recompilation — and programs one
        fresh machine per shard, exactly what a second hardware copy of
        the deployment costs.  Noise decorrelates from the parent unless
        an explicit ``noise_seed`` is given.
        """
        return ShardedSession(
            self.shard_set,
            self.spec,
            self.tech,
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=(
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            ),
        )

    def reset(self) -> None:
        """Clear query-side state on every shard; patterns survive."""
        for session in self.sessions:
            session.reset()
        self.last_report = None
        self.batches_run = 0

    # ------------------------------------------------------------- queries
    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Fan a ``B×D`` batch out to every shard and merge the top-k.

        Returns ``[values, indices]`` (``B×k`` float32 / int64) with
        *global* row indices — bitwise identical (noise disabled) to one
        unbounded machine holding the whole stored matrix.  The merge
        re-ranks the shards' float64 candidate scores with the same
        stable tie-break as the single-machine top-k peripheral.
        """
        self._require_no_tenant(tenant)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        outputs = [session.run_batch(queries) for session in self.sessions]
        n_queries = queries.shape[0]
        # Candidates concatenate in row-offset order, so the stable
        # argsort's positional tie-break equals the global-row tie-break.
        values = np.concatenate(
            [session.last_values for session in self.sessions], axis=1
        )
        indices = np.concatenate(
            [
                output[1].astype(np.int64) + offset
                for output, offset in zip(outputs, self.row_offsets)
            ],
            axis=1,
        )
        # Candidates are *unclamped* shard scores; ranking matches the
        # raw-score argsort a single machine performs, and the WTA
        # clamp (when the tech models one) applies once here — the
        # candidate-set winner is the global winner, since every shard
        # keeps its own best.
        k = min(self.k, values.shape[1])
        selection, top_values = best_match_batch(
            values, k, prefers_larger=self.largest,
            wta_window=self.tech.wta_window,
        )
        top_indices = np.take_along_axis(indices, selection, axis=1)
        n_candidates = values.shape[1]
        merge_latency = n_queries * self.tech.host_topk_latency(n_candidates)
        merge_energy = n_queries * self.tech.host_topk_energy(n_candidates)
        self.last_report = aggregate_reports(
            [session.last_report for session in self.sessions],
            merge_latency_ns=merge_latency,
            merge_energy_pj=merge_energy,
            queries=n_queries,
        )
        self.batches_run += 1
        return [
            top_values.astype(np.float32),
            top_indices.astype(np.int64),
        ]
