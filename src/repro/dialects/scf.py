"""``scf`` dialect: structured control flow (for / parallel loops).

The ``cam-map`` pass emits the nested loop structure of paper Fig. 6:
``scf.parallel`` for levels whose access mode is parallel and ``scf.for``
for serialized levels (the latency difference between the two is what the
executor's timing model measures).
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.block import Block
from repro.ir.operation import Operation, register_op
from repro.ir.types import IndexType, index
from repro.ir.value import Value


@register_op
class YieldOp(Operation):
    """Terminator for scf region bodies, forwarding iteration results."""

    OP_NAME = "scf.yield"
    IS_TERMINATOR = True

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__(operands=operands)


class _LoopBase(Operation):
    """Common accessors for for/parallel loops (single induction var)."""

    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_var(self) -> Value:
        return self.body.arguments[0]

    def verify(self) -> None:
        if self.num_operands < 3:
            raise ValueError(f"{self.name}: needs lb, ub and step operands")
        for i in range(3):
            if not isinstance(self.operands[i].type, IndexType):
                raise ValueError(f"{self.name}: bounds must be index-typed")
        if not self.regions or self.regions[0].empty:
            raise ValueError(f"{self.name}: requires a body block")


@register_op
class ForOp(_LoopBase):
    """Sequential counted loop with optional loop-carried values.

    Operands: ``lb, ub, step, init_values...``; the body block receives the
    induction variable plus one argument per loop-carried value, and must
    terminate with ``scf.yield`` of the next carried values.  Results are
    the final carried values.
    """

    OP_NAME = "scf.for"

    def __init__(
        self,
        lower_bound: Value,
        upper_bound: Value,
        step: Value,
        init_values: Sequence[Value] = (),
    ):
        super().__init__(
            operands=[lower_bound, upper_bound, step, *init_values],
            result_types=[v.type for v in init_values],
            regions=1,
        )
        block = Block([index] + [v.type for v in init_values])
        self.regions[0].append(block)

    @property
    def init_values(self) -> Sequence[Value]:
        return self.operands[3:]

    @property
    def iter_args(self) -> Sequence[Value]:
        return self.body.arguments[1:]


@register_op
class ParallelOp(_LoopBase):
    """Parallel counted loop: all iterations are independent.

    The executor's timing model starts every iteration at the same time and
    joins at the maximum end time, so nesting ``scf.parallel`` vs ``scf.for``
    is precisely how mapping decisions change latency.
    """

    OP_NAME = "scf.parallel"

    def __init__(self, lower_bound: Value, upper_bound: Value, step: Value):
        super().__init__(
            operands=[lower_bound, upper_bound, step],
            regions=1,
        )
        self.regions[0].append(Block([index]))


@register_op
class IfOp(Operation):
    """Two-armed conditional; region 0 is then, region 1 is else."""

    OP_NAME = "scf.if"

    def __init__(self, condition: Value, result_types: Sequence = ()):
        super().__init__(
            operands=[condition],
            result_types=result_types,
            regions=2,
        )
        self.regions[0].append(Block())
        self.regions[1].append(Block())

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Block:
        return self.regions[1].entry_block
