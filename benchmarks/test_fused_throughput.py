"""Fused batch-kernel throughput (trace once, execute flat).

The unfused :class:`repro.runtime.session.QuerySession` walk dispatches
every batch through per-tile ``machine.search`` calls, latch-bank
writes, per-subarray reads and hierarchy merges — Python dispatch and
copies that dwarf the useful arithmetic once the store spans many
subarrays.  The traced :class:`repro.runtime.fused.FusedPlan` collapses
that walk into a flat sequence of preallocated NumPy ops (and, for
integer-exact metrics such as binary Hamming, into plain BLAS matmuls)
while charging identical energy/latency and returning bitwise-identical
results.

Asserted: >= 3x wall-clock over the unfused session path at batch 64 on
a single machine (the PR's acceptance floor — the exact-Hamming rewrite
typically lands near 10x), bitwise output equality, and identical
energy accounting.  The ``test_bench_*`` entries extend the existing
pytest-benchmark trajectory.
"""

import time

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder

from harness import print_series

# Wall-clock-sensitive: excluded from the deterministic CI tier
# (`-m "not benchmark"`); the benchmarks-smoke job runs it with floors.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

BATCH = 64
PATTERNS = 256
DIMS = 256


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    stored = rng.choice([-1.0, 1.0], (PATTERNS, DIMS)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (BATCH, DIMS)).astype(np.float32)
    spec = paper_spec(rows=32, cols=32)
    fused = C4CAMCompiler(spec).compile(
        _dot_model(stored), [placeholder((1, DIMS))]
    )
    unfused = C4CAMCompiler(spec).compile(
        _dot_model(stored), [placeholder((1, DIMS))], fused=False
    )
    return dict(queries=queries, fused=fused, unfused=unfused)


def _time(kernel, queries, reps=5):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        kernel.run_batch(queries)
        best = min(best, time.perf_counter() - t0)
    return best


def test_fused_throughput_3x(workload):
    """The fused plan beats the unfused session walk >= 3x at batch 64."""
    fused, unfused = workload["fused"], workload["unfused"]
    queries = workload["queries"]

    # Warm both paths: session setup walk, plan trace, numpy caches.
    fv, fi = fused.run_batch(queries)
    uv, ui = unfused.run_batch(queries)
    assert fused.session().fused_runs > 0
    assert unfused.session().fused_runs == 0

    fused_s = _time(fused, queries)
    unfused_s = _time(unfused, queries)

    speedup = unfused_s / fused_s
    print_series(
        f"fused batch kernel (B={BATCH}, {PATTERNS}x{DIMS})",
        ["wall s", "queries/s"],
        [
            ("unfused session walk", [unfused_s, BATCH / unfused_s]),
            ("fused plan", [fused_s, BATCH / fused_s]),
            ("speedup", [speedup, speedup]),
        ],
    )

    # Functional: bitwise identical to the unfused oracle.
    np.testing.assert_array_equal(fi, ui)
    np.testing.assert_array_equal(fv, uv)
    # Accounting: a fused run charges the identical energy/latency.
    fr = fused.session().last_report
    ur = unfused.session().last_report
    for field in ("search", "read", "merge", "host", "write"):
        assert getattr(fr.energy, field) == getattr(ur.energy, field)
    assert fr.query_latency_ns == ur.query_latency_ns
    assert fr.searches == ur.searches
    # The acceptance floor.
    assert speedup >= 3.0, f"only {speedup:.1f}x over the unfused walk"


def test_fused_rebuild_cost_amortizes(workload):
    """One mutation invalidates the plan; the rebuilt plan serves the
    next batch and the re-trace stays far below a machine re-program."""
    fused = workload["fused"]
    queries = workload["queries"]
    session = fused.session()
    session.run_batch(queries)
    runs = session.fused_runs
    rng = np.random.default_rng(7)
    ids = session.insert(
        rng.choice([-1.0, 1.0], (2, DIMS)).astype(np.float32)
    )
    assert session._fused_plan is None  # invalidated by the mutation
    t0 = time.perf_counter()
    session.run_batch(queries)          # re-trace + fused execute
    retrace_s = time.perf_counter() - t0
    assert session.fused_runs == runs + 1
    session.delete(ids)
    print(f"mutate->retrace->serve: {retrace_s * 1e3:.2f} ms")


def test_bench_fused_batch64(benchmark, workload):
    """BENCH trajectory: one fused 64-query batch."""
    fused, queries = workload["fused"], workload["queries"]
    fused.run_batch(queries)  # session open + plan traced
    benchmark.pedantic(
        lambda: fused.run_batch(queries),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_bench_unfused_batch64(benchmark, workload):
    """BENCH trajectory: the unfused session-walk baseline."""
    unfused, queries = workload["unfused"], workload["queries"]
    unfused.run_batch(queries)
    benchmark.pedantic(
        lambda: unfused.run_batch(queries),
        rounds=3, iterations=1, warmup_rounds=1,
    )
