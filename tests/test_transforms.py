"""Tests for the C4CAM transformation passes (torch→cim→cam)."""

import numpy as np
import pytest

import repro.frontend.torch_api as torch
from repro.arch import dse_spec, paper_spec
from repro.frontend import import_graph, placeholder, trace
from repro.ir.traversal import count, first, walk
from repro.ir.verifier import verify
from repro.passes.pass_manager import PassManager
from repro.transforms import (
    CimFuseOpsPass,
    CimPartitionPass,
    CimToCamPass,
    SimilarityMatchingPass,
    TorchToCimPass,
    cam_search_metric,
    compute_partition_plan,
    match_similarity,
    plan_of,
    resolve_optimization,
    subarrays_required,
)


def dot_module(p=10, d=256, q=4, k=1, largest=False):
    w = np.ones((p, d), dtype=np.float32)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(w)

        def forward(self, x):
            others = self.weight.transpose(-2, -1)
            mm = torch.matmul(x, others)
            return torch.ops.aten.topk(mm, k, largest=largest)

    return import_graph(trace(M(), [placeholder((q, d))])).module


def euclid_module(p=16, d=64, k=3):
    w = np.ones((p, d), dtype=np.float32)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(w)

        def forward(self, q):
            diff = torch.sub(q, self.weight)
            dist = torch.norm(diff, p=2, dim=-1)
            return torch.ops.aten.topk(dist, k, largest=False)

    return import_graph(trace(M(), [placeholder((d,))])).module


def cosine_module(p=8, d=64, q=2):
    w = np.ones((p, d), dtype=np.float32)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(w)

        def forward(self, x):
            qn = torch.norm(x, p=2, dim=-1, keepdim=True)
            sn = torch.norm(self.weight, p=2, dim=-1)
            others = self.weight.transpose(-2, -1)
            dots = torch.matmul(x, others)
            return torch.div(dots, sn, qn)  # Algorithm 1: div(v4, v2, v1)

    return import_graph(trace(M(), [placeholder((q, d))])).module


class TestTorchToCim:
    def test_each_op_gets_triple(self):
        m = dot_module()
        PassManager([TorchToCimPass()]).run(m)
        # transpose, matmul, topk -> 3 triples
        assert count(m, name="cim.acquire") == 3
        assert count(m, name="cim.execute") == 3
        assert count(m, name="cim.release") == 3
        assert count(m, name="torch.aten.mm") == 0

    def test_bodies_contain_cim_ops(self):
        m = dot_module()
        PassManager([TorchToCimPass()]).run(m)
        assert count(m, name="cim.matmul") == 1
        assert count(m, name="cim.transpose") == 1
        assert count(m, name="cim.topk") == 1

    def test_constants_left_alone(self):
        m = dot_module()
        PassManager([TorchToCimPass()]).run(m)
        assert count(m, name="torch.constant.int") == 1


class TestFusion:
    def test_fuses_to_single_execute(self):
        m = dot_module()
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        assert count(m, name="cim.execute") == 1
        assert count(m, name="cim.acquire") == 1
        ex = first(m, name="cim.execute")
        names = [op.name for op in ex.body.operations]
        assert names == [
            "cim.transpose", "cim.matmul", "cim.topk", "cim.yield",
        ]

    def test_fused_module_verifies(self):
        m = dot_module()
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        verify(m)

    def test_euclidean_fusion(self):
        m = euclid_module()
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        ex = first(m, name="cim.execute")
        names = [op.name for op in ex.body.operations]
        assert names == ["cim.sub", "cim.norm", "cim.topk", "cim.yield"]

    def test_unrelated_executes_not_fused(self):
        # Two independent transposes: no producer/consumer relation.

        def fn(a, b):
            return a.transpose(0, 1), b.transpose(0, 1)

        m = import_graph(
            trace(fn, [placeholder((4, 8)), placeholder((4, 8))])
        ).module
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        assert count(m, name="cim.execute") == 2


class TestSimilarityMatching:
    def run_pipeline(self, m):
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass()]
        ).run(m)
        return m

    def test_dot_pattern(self):
        m = self.run_pipeline(dot_module())
        sim = first(m, name="cim.similarity")
        assert sim is not None
        assert sim.metric == "dot"
        assert sim.largest is False  # from topk largest=False (Fig. 4a)
        assert sim.k == 1

    def test_euclidean_pattern(self):
        m = self.run_pipeline(euclid_module())
        sim = first(m, name="cim.similarity")
        assert sim.metric == "euclidean"
        assert sim.k == 3
        # stored must be the rank-2 weight operand
        assert sim.stored.type.shape == (16, 64)

    def test_cosine_pattern(self):
        m = self.run_pipeline(cosine_module())
        score = first(m, name="cim.score")
        assert score is not None
        assert score.metric == "cosine"

    def test_unmatched_block_untouched(self):
        def fn(a):
            return a.transpose(0, 1)

        m = import_graph(trace(fn, [placeholder((4, 8))])).module
        self.run_pipeline(m)
        assert first(m, name="cim.similarity") is None
        assert count(m, name="cim.transpose") == 1

    def test_match_returns_metric(self):
        m = dot_module()
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        ex = first(m, name="cim.execute")
        assert match_similarity(ex) == "dot"

    def test_wrong_op_count_no_match(self):
        def fn(a, w):
            t = w.transpose(-2, -1)
            return torch.matmul(a, t)  # no topk: 3 ops with yield

        m = import_graph(
            trace(fn, [placeholder((4, 8)), placeholder((6, 8))])
        ).module
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        ex = first(m, name="cim.execute")
        assert match_similarity(ex) is None

    def test_module_verifies_after_match(self):
        m = self.run_pipeline(dot_module())
        verify(m)


class TestPartitioning:
    def test_table1_base_counts(self):
        """Paper Table I, cam-based row — exact integers."""
        expected = {16: 512, 32: 256, 64: 128, 128: 64, 256: 32}
        for n, want in expected.items():
            assert subarrays_required(10, 8192, dse_spec(n), False) == want

    def test_table1_density_counts(self):
        """Paper Table I, cam-density row — exact integers."""
        expected = {16: 512, 32: 86, 64: 22, 128: 6, 256: 2}
        for n, want in expected.items():
            assert subarrays_required(10, 8192, dse_spec(n), True) == want

    def test_plan_basic(self):
        plan = compute_partition_plan(10, 8192, 1, dse_spec(32), False)
        assert plan.row_tiles == 1 and plan.col_tiles == 256
        assert plan.batches == 1
        assert plan.subarrays == 256

    def test_plan_density_batches(self):
        plan = compute_partition_plan(10, 8192, 1, dse_spec(64), True)
        assert plan.batches == 6
        assert plan.subarrays == 22

    def test_density_disabled_without_selective_search(self):
        from dataclasses import replace

        spec = replace(dse_spec(64), selective_search=False)
        plan = compute_partition_plan(10, 8192, 1, spec, True)
        assert plan.batches == 1

    def test_density_no_gain_with_row_tiling(self):
        # More patterns than rows: no batches possible.
        plan = compute_partition_plan(100, 1024, 1, dse_spec(32), True)
        assert plan.batches == 1
        assert plan.row_tiles == 4

    def test_tile_of_base(self):
        plan = compute_partition_plan(64, 256, 1, dse_spec(32), False)
        assert plan.row_tiles == 2 and plan.col_tiles == 8
        assert plan.tile_of(0, 0) == (0, 0)
        assert plan.tile_of(9, 0) == (1, 1)
        assert plan.tile_of(16, 0) is None

    def test_tile_of_batches(self):
        plan = compute_partition_plan(10, 8192, 1, dse_spec(64), True)
        assert plan.tile_of(0, 0) == (0, 0)
        assert plan.tile_of(0, 5) == (0, 5)
        # Subarray 21 holds column tiles 126, 127 (2 of its 6 slots used).
        assert plan.tile_of(21, 1) == (0, 127)
        assert plan.tile_of(21, 2) is None

    def test_annotation_roundtrip(self):
        m = dot_module()
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(dse_spec(32))]
        ).run(m)
        sim = first(m, name="cim.similarity")
        plan = plan_of(sim)
        assert plan.patterns == 10 and plan.features == 256
        assert plan.queries == 4

    def test_plan_of_missing_annotation(self):
        m = dot_module()
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass()]
        ).run(m)
        sim = first(m, name="cim.similarity")
        with pytest.raises(ValueError):
            plan_of(sim)

    def test_invalid_plan_inputs(self):
        with pytest.raises(ValueError):
            compute_partition_plan(0, 128, 1, dse_spec(32), False)


class TestOptimizationConfig:
    def test_latency_all_parallel(self):
        config = resolve_optimization(dse_spec(32, "latency"))
        assert all(m == "parallel" for m in config.modes.values())
        assert not config.use_density

    def test_power_serializes_subarrays(self):
        config = resolve_optimization(dse_spec(32, "power"))
        assert config.modes["subarray"] == "sequential"
        assert config.modes["array"] == "parallel"

    def test_density_flag(self):
        assert resolve_optimization(dse_spec(32, "density")).use_density
        both = resolve_optimization(dse_spec(32, "power+density"))
        assert both.use_density
        assert both.modes["subarray"] == "sequential"

    def test_metric_substitution_tcam(self):
        spec = dse_spec(32)
        assert cam_search_metric("dot", spec) == ("hamming", True)
        assert cam_search_metric("euclidean", spec) == ("hamming", False)

    def test_metric_substitution_mcam(self):
        spec = paper_spec(cam_type="mcam", bits_per_cell=2)
        assert cam_search_metric("dot", spec) == ("dot", False)
        assert cam_search_metric("euclidean", spec) == ("euclidean", False)

    def test_metric_substitution_acam(self):
        spec = paper_spec(cam_type="acam")
        assert cam_search_metric("euclidean", spec) == ("euclidean", False)


class TestCimToCam:
    def lower(self, m, spec):
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec, resolve_optimization(spec).use_density),
             CimToCamPass(spec)]
        ).run(m)
        return m

    def test_no_cim_execute_left(self):
        m = self.lower(dot_module(), dse_spec(32))
        assert count(m, name="cim.execute") == 0
        assert count(m, name="cim.acquire") == 0
        assert count(m, name="cim.release") == 0

    def test_cam_ops_emitted(self):
        m = self.lower(dot_module(), dse_spec(32))
        for name in (
            "cam.alloc_bank", "cam.alloc_mat", "cam.alloc_array",
            "cam.alloc_subarray", "cam.write_value", "cam.search",
            "cam.read", "cam.merge_partial", "cam.select_topk",
            "cam.query_start",
        ):
            assert count(m, name=name) >= 1, name

    def test_module_verifies(self):
        m = self.lower(dot_module(), dse_spec(32))
        verify(m)

    def test_base_config_all_parallel_loops(self):
        m = self.lower(dot_module(), dse_spec(32, "latency"))
        assert count(m, name="scf.parallel") >= 8

    def test_power_config_has_sequential_subarray_loop(self):
        m_base = self.lower(dot_module(), dse_spec(32, "latency"))
        m_pow = self.lower(dot_module(), dse_spec(32, "power"))
        assert count(m_pow, name="scf.parallel") < \
            count(m_base, name="scf.parallel")

    def test_density_emits_batched_searches(self):
        spec = dse_spec(64, "density")
        m = self.lower(dot_module(p=10, d=512), spec)
        searches = [op for op in walk(m, name="cam.search")]
        # 6 batches per subarray statically unrolled
        assert len(searches) == 6
        assert all(s.accumulate for s in searches)

    def test_cosine_stays_on_host(self):
        spec = dse_spec(32)
        m = self.lower(cosine_module(), spec)
        assert count(m, name="cim.score") == 1
        assert count(m, name="cam.search") == 0

    def test_indivisible_features_rejected(self):
        spec = dse_spec(32)
        m = dot_module(p=10, d=100)  # 100 % 32 != 0
        with pytest.raises(Exception) as exc_info:
            self.lower(m, spec)
        assert "pad" in str(exc_info.value)

    def test_bank_cap_respected(self):
        from dataclasses import replace

        spec = replace(dse_spec(16), banks=1)
        m = dot_module(p=10, d=8192)  # needs 512 subarrays = 4 banks
        with pytest.raises(Exception, match="bank"):
            self.lower(m, spec)
