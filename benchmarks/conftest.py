"""Pytest fixtures for the benchmark harness (see harness.py)."""

import pytest

from harness import HdcWorkload, KnnWorkload


@pytest.fixture(scope="session")
def hdc_1bit():
    return HdcWorkload(bits=1)


@pytest.fixture(scope="session")
def hdc_2bit():
    return HdcWorkload(bits=2)


@pytest.fixture(scope="session")
def knn_workload():
    return KnnWorkload()
