"""Runtime: the IR interpreter, batched query sessions, sharded
multi-machine sessions, the replicated async serving layer and host
reference semantics."""

from .executor import ExecutionError, Interpreter
from .serving import ReplicatedSession, ServingEngine
from .session import QueryProgram, QuerySession, SessionError
from .sharding import (
    Shard,
    ShardedSession,
    ShardSet,
    aggregate_reports,
    build_shard_set,
    plan_shard_count,
    shard_sizes,
)
from . import values

__all__ = [
    "ExecutionError",
    "Interpreter",
    "QueryProgram",
    "QuerySession",
    "ReplicatedSession",
    "ServingEngine",
    "SessionError",
    "Shard",
    "ShardedSession",
    "ShardSet",
    "aggregate_reports",
    "build_shard_set",
    "plan_shard_count",
    "shard_sizes",
    "values",
]
