"""Dialect registry / context.

Dialects in this project are Python modules that register op classes at
import time.  The :class:`Context` tracks which dialects have been loaded
and offers :func:`load_all_dialects` used by the driver and tests.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

KNOWN_DIALECTS = (
    "builtin",
    "func",
    "arith",
    "tensor",
    "memref",
    "scf",
    "torch",
    "cim",
    "cam",
)


class Context:
    """Tracks loaded dialects.  Loading is idempotent."""

    def __init__(self):
        self.loaded: Dict[str, object] = {}

    def load_dialect(self, name: str):
        """Import and register the dialect module ``repro.dialects.<name>``."""
        if name in self.loaded:
            return self.loaded[name]
        if name == "builtin":
            module = importlib.import_module("repro.ir.module")
        else:
            module = importlib.import_module(f"repro.dialects.{name}")
        self.loaded[name] = module
        return module

    def load_all_dialects(self) -> List[str]:
        """Load every dialect this project defines; returns their names."""
        for name in KNOWN_DIALECTS:
            self.load_dialect(name)
        return list(self.loaded)


_GLOBAL_CONTEXT = Context()


def global_context() -> Context:
    """Process-wide default context."""
    return _GLOBAL_CONTEXT


def load_all_dialects() -> Context:
    """Ensure every dialect is registered; returns the global context."""
    _GLOBAL_CONTEXT.load_all_dialects()
    return _GLOBAL_CONTEXT
