"""Architecture specifications and technology models."""

from .presets import dse_spec, iso_capacity_spec, paper_spec, validation_spec
from .spec import ACCESS_MODES, CAM_TYPES, LEVELS, OPT_TARGETS, ArchSpec
from .technology import FEFET_45NM, TechnologyModel

__all__ = [
    "ACCESS_MODES",
    "CAM_TYPES",
    "LEVELS",
    "OPT_TARGETS",
    "ArchSpec",
    "FEFET_45NM",
    "TechnologyModel",
    "dse_spec",
    "iso_capacity_spec",
    "paper_spec",
    "validation_spec",
]
