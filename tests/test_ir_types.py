"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    DYNAMIC,
    BoolType,
    CamIdType,
    DeviceHandleType,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    parse_type,
)


class TestScalarTypes:
    def test_index_str(self):
        assert str(IndexType()) == "index"

    def test_integer_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(64)) == "i64"

    def test_integer_width_validation(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            IntegerType(-8)

    def test_float_str(self):
        assert str(FloatType(32)) == "f32"

    def test_float_width_validation(self):
        with pytest.raises(ValueError):
            FloatType(8)

    def test_bool_prints_as_i1(self):
        assert str(BoolType()) == "i1"

    def test_none_type(self):
        assert str(NoneType()) == "none"

    def test_structural_equality(self):
        assert IntegerType(32) == IntegerType(32)
        assert IntegerType(32) != IntegerType(64)
        assert FloatType(32) != IntegerType(32)
        assert IndexType() == IndexType()

    def test_hashable(self):
        s = {IntegerType(32), IntegerType(32), FloatType(32)}
        assert len(s) == 2

    def test_singletons_equal_fresh_instances(self):
        assert i32 == IntegerType(32)
        assert f32 == FloatType(32)
        assert index == IndexType()
        assert i1 == BoolType()


class TestShapedTypes:
    def test_tensor_str(self):
        assert str(TensorType([10, 8192], f32)) == "tensor<10x8192xf32>"

    def test_memref_str(self):
        assert str(MemRefType([10, 32], f32)) == "memref<10x32xf32>"

    def test_scalar_tensor(self):
        assert str(TensorType([], f32)) == "tensor<f32>"

    def test_dynamic_dim_str(self):
        assert str(TensorType([DYNAMIC, 4], f32)) == "tensor<?x4xf32>"

    def test_rank(self):
        assert TensorType([1, 2, 3], f32).rank == 3
        assert TensorType([], f32).rank == 0

    def test_num_elements(self):
        assert TensorType([10, 32], f32).num_elements() == 320

    def test_num_elements_dynamic_raises(self):
        with pytest.raises(ValueError):
            TensorType([DYNAMIC], f32).num_elements()

    def test_has_static_shape(self):
        assert TensorType([2, 2], f32).has_static_shape
        assert not TensorType([DYNAMIC], f32).has_static_shape

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            TensorType([-3], f32)

    def test_nested_shaped_element_rejected(self):
        with pytest.raises(ValueError):
            TensorType([2], TensorType([2], f32))

    def test_tensor_memref_not_equal(self):
        assert TensorType([2], f32) != MemRefType([2], f32)


class TestFunctionAndOpaqueTypes:
    def test_function_type_str_single_result(self):
        ft = FunctionType([i32, f32], [f32])
        assert str(ft) == "(i32, f32) -> f32"

    def test_function_type_str_multi_result(self):
        ft = FunctionType([i32], [f32, i64])
        assert str(ft) == "(i32) -> (f32, i64)"

    def test_device_handle(self):
        assert str(DeviceHandleType()) == "!cim.device"

    def test_cam_id_levels(self):
        for level in ("bank", "mat", "array", "subarray"):
            assert str(CamIdType(level)) == f"!cam.{level}_id"

    def test_cam_id_bad_level(self):
        with pytest.raises(ValueError):
            CamIdType("chip")

    def test_cam_id_equality(self):
        assert CamIdType("bank") == CamIdType("bank")
        assert CamIdType("bank") != CamIdType("mat")


class TestParseType:
    @pytest.mark.parametrize(
        "text",
        [
            "index", "i1", "i32", "i64", "f32", "f64", "none",
            "!cim.device", "!cam.bank_id", "!cam.subarray_id",
            "tensor<10x8192xf32>", "memref<10x32xf32>", "tensor<f32>",
            "tensor<?x4xf32>",
        ],
    )
    def test_roundtrip(self, text):
        assert str(parse_type(text)) == text

    def test_function_type_roundtrip(self):
        text = "(tensor<10x8192xf32>, i64) -> (tensor<10x1xf32>, tensor<10x1xi64>)"
        assert str(parse_type(text)) == text

    def test_function_type_single_result(self):
        text = "(i32) -> f32"
        assert str(parse_type(text)) == text

    def test_nested_function_result(self):
        ft = parse_type("() -> ()")
        assert isinstance(ft, FunctionType)
        assert ft.inputs == () and ft.results == ()

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_type("wibble<3>")

    def test_whitespace_tolerated(self):
        assert parse_type("  i32  ") == i32
